// Full-stack integration tests: hierarchies of subnets over the simulated
// network, exercising the complete paper pipeline — spawn, top-down funding,
// bottom-up release via checkpoints, path messages with content resolution,
// checkpoint aggregation, and supply conservation.
#include <gtest/gtest.h>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params(core::ConsensusType consensus,
                                 std::uint32_t period = 5,
                                 std::uint32_t threshold = 1) {
  core::SubnetParams p;
  p.name = "subnet";
  p.consensus = consensus;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = period;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, threshold};
  return p;
}

HierarchyConfig fast_config() {
  HierarchyConfig cfg;
  cfg.seed = 42;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = subnet_params(core::ConsensusType::kPoaRoundRobin);
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 200 * sim::kMillisecond;
  return cfg;
}

consensus::EngineConfig fast_engine() {
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  return e;
}

struct IntegrationFixture : ::testing::Test {
  Hierarchy h{fast_config()};

  Subnet* spawn(Subnet& parent, const std::string& name,
                core::ConsensusType consensus =
                    core::ConsensusType::kPoaRoundRobin,
                std::size_t validators = 3, std::uint32_t period = 5) {
    auto r = h.spawn_subnet(parent, name,
                            subnet_params(consensus, period,
                                          /*threshold=*/1),
                            validators, TokenAmount::whole(5), fast_engine());
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
    return r.ok() ? r.value() : nullptr;
  }
};

// --------------------------------------------------------------- rootnet

TEST_F(IntegrationFixture, RootnetProcessesTransfers) {
  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok()) << alice.error().to_string();
  auto bob = h.make_user("bob", TokenAmount::whole(1));
  ASSERT_TRUE(bob.ok());

  auto receipt = h.call(h.root(), alice.value(), bob.value().addr, 0, {},
                        TokenAmount::whole(10));
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  EXPECT_TRUE(receipt.value().ok());
  EXPECT_EQ(h.root().node(0).balance(bob.value().addr),
            TokenAmount::whole(11));
  // All root nodes converge to the same state.
  h.run_for(2 * sim::kSecond);
  for (std::size_t i = 0; i < h.root().size(); ++i) {
    EXPECT_EQ(h.root().node(i).balance(bob.value().addr),
              TokenAmount::whole(11));
  }
}

// ---------------------------------------------------------------- spawning

TEST_F(IntegrationFixture, SpawnRegistersAndBootsChild) {
  Subnet* child = spawn(h.root(), "child-a");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->id.to_string(), "/root/" + child->sa.to_string());

  // The SCA tracks the child as active with the full collateral.
  const auto sca = h.root().node(0).sca_state();
  ASSERT_EQ(sca.subnets.size(), 1u);
  const auto& entry = sca.subnets.begin()->second;
  EXPECT_EQ(entry.status, core::SubnetStatus::kActive);
  EXPECT_EQ(entry.collateral, TokenAmount::whole(15));  // 3 x 5

  // The child chain produces blocks.
  ASSERT_TRUE(h.run_until(
      [&] { return child->node(0).chain().height() >= 5; },
      20 * sim::kSecond));
}

TEST_F(IntegrationFixture, SubnetsRunHeterogeneousConsensus) {
  Subnet* poa = spawn(h.root(), "poa-net", core::ConsensusType::kPoaRoundRobin);
  Subnet* bft = spawn(h.root(), "bft-net", core::ConsensusType::kTendermint,
                      4);
  ASSERT_NE(poa, nullptr);
  ASSERT_NE(bft, nullptr);
  ASSERT_TRUE(h.run_until(
      [&] {
        return poa->node(0).chain().height() >= 5 &&
               bft->node(0).chain().height() >= 3;
      },
      60 * sim::kSecond));
}

// ---------------------------------------------------------------- top-down

TEST_F(IntegrationFixture, TopDownFundingMintsInChild) {
  Subnet* child = spawn(h.root(), "child-a");
  ASSERT_NE(child, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok());
  auto receipt = h.send_cross(h.root(), alice.value(), child->id,
                              alice.value().addr, TokenAmount::whole(20));
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  ASSERT_TRUE(receipt.value().ok()) << receipt.value().error;

  // The child's cross-msg pool picks the committed msg up and applies it.
  ASSERT_TRUE(h.run_until(
      [&] {
        return child->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(20);
      },
      30 * sim::kSecond));
  // Supply accounting: the root SCA records the injection.
  const auto sca = h.root().node(0).sca_state();
  EXPECT_EQ(sca.subnets.begin()->second.circulating_supply,
            TokenAmount::whole(20));
}

TEST_F(IntegrationFixture, InsideSubnetTransfersWork) {
  Subnet* child = spawn(h.root(), "child-a");
  ASSERT_NE(child, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(
      h.send_cross(h.root(), alice.value(), child->id, alice.value().addr,
                   TokenAmount::whole(20))
          .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return !child->node(0).balance(alice.value().addr).is_zero();
      },
      30 * sim::kSecond));

  // Alice transacts inside the subnet without touching the root.
  const auto root_height_before = h.root().node(0).chain().height();
  User carol{crypto::KeyPair::from_label("carol"),
             Address::key(crypto::KeyPair::from_label("carol")
                              .public_key()
                              .to_bytes())};
  auto receipt = h.call(*child, alice.value(), carol.addr, 0, {},
                        TokenAmount::whole(3));
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  EXPECT_TRUE(receipt.value().ok());
  EXPECT_EQ(child->node(0).balance(carol.addr), TokenAmount::whole(3));
  (void)root_height_before;
}

// --------------------------------------------------------------- bottom-up

TEST_F(IntegrationFixture, BottomUpReleaseViaCheckpoints) {
  Subnet* child = spawn(h.root(), "child-a");
  ASSERT_NE(child, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(20))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return child->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(20);
      },
      30 * sim::kSecond));

  // Release 8 back to a fresh root account, bottom-up.
  User dave{crypto::KeyPair::from_label("dave"),
            Address::key(
                crypto::KeyPair::from_label("dave").public_key().to_bytes())};
  auto receipt =
      h.send_cross(*child, alice.value(), core::SubnetId::root(), dave.addr,
                   TokenAmount::whole(8));
  ASSERT_TRUE(receipt.ok()) << receipt.error().to_string();
  ASSERT_TRUE(receipt.value().ok()) << receipt.value().error;

  // The release burns in the child immediately.
  EXPECT_EQ(child->node(0).balance(chain::kBurnAddr), TokenAmount::whole(8));

  // ... and lands at the root after checkpoint propagation + resolution.
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(dave.addr) == TokenAmount::whole(8);
      },
      90 * sim::kSecond));

  // Firewall accounting: supply dropped by the withdrawn amount.
  const auto sca = h.root().node(0).sca_state();
  EXPECT_EQ(sca.subnets.begin()->second.circulating_supply,
            TokenAmount::whole(12));
  // The checkpoint chain is recorded for the child.
  EXPECT_GE(sca.subnets.begin()->second.checkpoints.size(), 1u);
}

TEST_F(IntegrationFixture, CheckpointsKeepFlowingWithoutTraffic) {
  Subnet* child = spawn(h.root(), "quiet-child");
  ASSERT_NE(child, nullptr);
  // Even with no cross-msgs, periodic checkpoints anchor the child chain
  // in the parent (paper §II: security anchoring is unconditional).
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        return !sca.subnets.empty() &&
               sca.subnets.begin()->second.checkpoints.size() >= 3;
      },
      120 * sim::kSecond));
  // prev-linkage: SA accepted them in order.
  const auto sa = h.root().node(0).sa_state(child->sa);
  ASSERT_TRUE(sa.has_value());
  EXPECT_GE(sa->last_checkpoint_epoch, 15);
}

// ------------------------------------------------------------ path & depth

TEST_F(IntegrationFixture, PathMessageBetweenSiblings) {
  Subnet* a = spawn(h.root(), "sub-a");
  Subnet* b = spawn(h.root(), "sub-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), a->id,
                           alice.value().addr, TokenAmount::whole(30))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return a->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(30);
      },
      30 * sim::kSecond));

  // Path msg /root/a -> /root/b: bottom-up to root, then top-down to b.
  User eve{crypto::KeyPair::from_label("eve"),
           Address::key(
               crypto::KeyPair::from_label("eve").public_key().to_bytes())};
  auto receipt = h.send_cross(*a, alice.value(), b->id, eve.addr,
                              TokenAmount::whole(9));
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt.value().ok()) << receipt.value().error;

  ASSERT_TRUE(h.run_until(
      [&] { return b->node(0).balance(eve.addr) == TokenAmount::whole(9); },
      120 * sim::kSecond));

  // Supply: a lost 9, b gained 9.
  const auto sca = h.root().node(0).sca_state();
  EXPECT_EQ(sca.subnets.at(a->sa).circulating_supply, TokenAmount::whole(21));
  EXPECT_EQ(sca.subnets.at(b->sa).circulating_supply, TokenAmount::whole(9));
}

TEST_F(IntegrationFixture, GrandchildTopDownAndBottomUp) {
  Subnet* child = spawn(h.root(), "mid");
  ASSERT_NE(child, nullptr);
  Subnet* grand = spawn(*child, "leaf");
  ASSERT_NE(grand, nullptr);
  EXPECT_EQ(grand->id.depth(), 2u);

  auto alice = h.make_user("alice", TokenAmount::whole(200));
  ASSERT_TRUE(alice.ok());
  // Fund the grandchild directly from the root (multi-hop top-down).
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), grand->id,
                           alice.value().addr, TokenAmount::whole(25))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return grand->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(25);
      },
      60 * sim::kSecond));

  // Withdraw from the grandchild all the way to the root (two checkpoint
  // hops: leaf -> mid, then mid -> root).
  User frank{crypto::KeyPair::from_label("frank"),
             Address::key(crypto::KeyPair::from_label("frank")
                              .public_key()
                              .to_bytes())};
  auto receipt = h.send_cross(*grand, alice.value(), core::SubnetId::root(),
                              frank.addr, TokenAmount::whole(7));
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(receipt.value().ok()) << receipt.value().error;
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(frank.addr) == TokenAmount::whole(7);
      },
      180 * sim::kSecond));
}

// ------------------------------------------------------------ conservation

TEST_F(IntegrationFixture, TokensConservedAcrossHierarchy) {
  Subnet* a = spawn(h.root(), "sub-a");
  ASSERT_NE(a, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(100));
  ASSERT_TRUE(alice.ok());

  const TokenAmount root_total_before =
      h.root().node(0).state().total_balance();

  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), a->id,
                           alice.value().addr, TokenAmount::whole(40))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return a->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(40);
      },
      30 * sim::kSecond));

  // Root conservation: funding locks tokens in the SCA, nothing vanishes.
  EXPECT_EQ(h.root().node(0).state().total_balance(), root_total_before);
  // Child minted exactly the injected amount (fees circulate internally).
  EXPECT_EQ(a->node(0).state().total_balance(), TokenAmount::whole(40));

  // Round-trip: release everything back; after settlement, child supply
  // returns to zero and root total is still conserved.
  auto receipt = h.send_cross(*a, alice.value(), core::SubnetId::root(),
                              alice.value().addr, TokenAmount::whole(39));
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        return sca.subnets.at(a->sa).circulating_supply ==
               TokenAmount::whole(1);
      },
      120 * sim::kSecond));
  EXPECT_EQ(h.root().node(0).state().total_balance(), root_total_before);
}

TEST_F(IntegrationFixture, MidLevelSubnetFundsItsOwnChildDirectly) {
  // Top-down from a NON-root subnet: /root/mid funds /root/mid/leaf without
  // the message ever touching the rootnet's cross-msg machinery.
  Subnet* mid = spawn(h.root(), "mid2");
  ASSERT_NE(mid, nullptr);
  Subnet* leaf = spawn(*mid, "leaf2");
  ASSERT_NE(leaf, nullptr);

  auto alice = h.make_user("alice", TokenAmount::whole(200));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), mid->id,
                           alice.value().addr, TokenAmount::whole(50))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return mid->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(50);
      },
      60 * sim::kSecond));

  // Direct hop: mid -> leaf.
  auto r = h.send_cross(*mid, alice.value(), leaf->id, alice.value().addr,
                        TokenAmount::whole(12));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok()) << r.value().error;
  ASSERT_TRUE(h.run_until(
      [&] {
        return leaf->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(12);
      },
      60 * sim::kSecond));
  // Supply accounting lives in MID's SCA (it is the leaf's parent).
  const auto mid_sca = mid->node(0).sca_state();
  EXPECT_EQ(mid_sca.subnets.at(leaf->sa).circulating_supply,
            TokenAmount::whole(12));
}

TEST_F(IntegrationFixture, GeneralCrossNetMethodInvocation) {
  // §IV-A is not only about payments: invoke a KV actor's Put in another
  // subnet through the cross-net machinery.
  Subnet* child = spawn(h.root(), "app-net");
  ASSERT_NE(child, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(200));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(50))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] { return !child->node(0).balance(alice.value().addr).is_zero(); },
      60 * sim::kSecond));

  // Deploy a KV app inside the child.
  actors::ExecParams exec;
  exec.code = chain::kCodeKvApp;
  auto dep = h.call(*child, alice.value(), chain::kInitAddr,
                    actors::init_method::kExec, encode(exec), TokenAmount());
  ASSERT_TRUE(dep.ok());
  ASSERT_TRUE(dep.value().ok());
  const Address app = decode<Address>(dep.value().ret).value();

  // From the ROOT, write into the child's KV app cross-net.
  actors::KvParams put{to_bytes("greeting"), to_bytes("hello-from-root")};
  auto r = h.send_cross(h.root(), alice.value(), child->id, app,
                        TokenAmount(), actors::kv_method::kPut, encode(put));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok()) << r.value().error;

  ASSERT_TRUE(h.run_until(
      [&] {
        actors::KvParams get{to_bytes("greeting"), {}};
        auto g = h.call(*child, alice.value(), app, actors::kv_method::kGet,
                        encode(get), TokenAmount(), 5 * sim::kSecond);
        return g.ok() && g.value().ok() &&
               g.value().ret == to_bytes("hello-from-root");
      },
      60 * sim::kSecond));
}

TEST_F(IntegrationFixture, MultipleCheckpointWindowsCarrySeparateBatches) {
  Subnet* child = spawn(h.root(), "windows");
  ASSERT_NE(child, nullptr);
  auto alice = h.make_user("alice", TokenAmount::whole(500));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(100))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] { return !child->node(0).balance(alice.value().addr).is_zero(); },
      60 * sim::kSecond));

  // Two releases in clearly separate windows.
  User sink{crypto::KeyPair::from_label("w-sink"),
            Address::key(
                crypto::KeyPair::from_label("w-sink").public_key().to_bytes())};
  for (int i = 0; i < 2; ++i) {
    auto r = h.send_cross(*child, alice.value(), core::SubnetId::root(),
                          sink.addr, TokenAmount::whole(3));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok());
    h.run_for(sim::kSecond);  // > one checkpoint period
  }
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(sink.addr) == TokenAmount::whole(6);
      },
      120 * sim::kSecond));
  // Two separate bottom-up metas were adopted and applied at the root.
  EXPECT_GE(h.root().node(0).sca_state().applied_bottomup_nonce, 2u);
}

// ------------------------------------------------------------- determinism

TEST(IntegrationDeterminism, SameSeedSameStateRoots) {
  std::vector<Cid> roots;
  for (int run = 0; run < 2; ++run) {
    Hierarchy h(fast_config());
    auto alice = h.make_user("alice", TokenAmount::whole(100));
    ASSERT_TRUE(alice.ok());
    auto child = h.spawn_subnet(
        h.root(), "det-child",
        subnet_params(core::ConsensusType::kPoaRoundRobin), 3,
        TokenAmount::whole(5), fast_engine());
    ASSERT_TRUE(child.ok());
    ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child.value()->id,
                             alice.value().addr, TokenAmount::whole(20))
                    .ok());
    h.run_for(20 * sim::kSecond);
    roots.push_back(h.root().node(0).state().flush());
    roots.push_back(child.value()->node(0).state().flush());
  }
  EXPECT_EQ(roots[0], roots[2]);
  EXPECT_EQ(roots[1], roots[3]);
}

}  // namespace
}  // namespace hc::runtime
