// Property-based tests: randomized operation schedules against the system's
// global invariants —
//   (1) token conservation on every chain (nothing minted or lost except
//       protocol-defined mint/burn pairs),
//   (2) firewall accounting: tracked circulating supply equals the child's
//       real balance minus its burnt funds, at quiescence,
//   (3) cross-msg nonce ordering: applied == committed at quiescence,
//   (4) SA/SCA checkpoint agreement,
//   (5) validator-state convergence: all nodes of a subnet agree on every
//       committed height,
// swept across random seeds, with and without network faults.
#include <gtest/gtest.h>

#include "actors/methods.hpp"
#include "runtime/hierarchy.hpp"
#include "sim/rng.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params() {
  core::SubnetParams p;
  p.name = "prop";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

struct PropertyWorld {
  Hierarchy h;
  Subnet* a = nullptr;
  Subnet* b = nullptr;
  User alice;
  User bob;
  sim::Rng rng;

  explicit PropertyWorld(std::uint64_t seed)
      : h([&] {
          HierarchyConfig cfg;
          cfg.seed = seed;
          cfg.latency =
              sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
          cfg.root_params = subnet_params();
          cfg.root_validators = 3;
          cfg.root_engine.block_time = 100 * sim::kMillisecond;
          return cfg;
        }()),
        rng(seed * 7919 + 13) {
    consensus::EngineConfig fast;
    fast.block_time = 100 * sim::kMillisecond;
    fast.timeout_base = 300 * sim::kMillisecond;
    auto ra = h.spawn_subnet(h.root(), "prop-a", subnet_params(), 3,
                             TokenAmount::whole(5), fast);
    auto rb = h.spawn_subnet(h.root(), "prop-b", subnet_params(), 3,
                             TokenAmount::whole(5), fast);
    if (!ra.ok() || !rb.ok()) return;
    a = ra.value();
    b = rb.value();
    auto ua = h.make_user("prop-alice", TokenAmount::whole(10000));
    auto ub = h.make_user("prop-bob", TokenAmount::whole(10000));
    if (!ua.ok() || !ub.ok()) {
      a = nullptr;
      return;
    }
    alice = ua.value();
    bob = ub.value();
    // Seed both subnets with funds for both users.
    for (Subnet* s : {a, b}) {
      for (User* u : {&alice, &bob}) {
        (void)h.send_cross(h.root(), *u, s->id, u->addr,
                           TokenAmount::whole(200));
      }
    }
    const bool funded = h.run_until(
        [&] {
          for (Subnet* s : {a, b}) {
            for (User* u : {&alice, &bob}) {
              if (s->node(0).balance(u->addr).is_zero()) return false;
            }
          }
          return true;
        },
        120 * sim::kSecond);
    if (!funded) a = nullptr;
  }

  [[nodiscard]] bool ok() const { return a != nullptr; }

  /// One random cross-net or local operation. Uses fire-and-forget submit
  /// (failures of individual ops are fine; invariants must hold anyway).
  void random_op() {
    Subnet* subnets[] = {&h.root(), a, b};
    Subnet& from = *subnets[rng.uniform(3)];
    User& user = rng.chance(0.5) ? alice : bob;
    const TokenAmount value = TokenAmount::whole(
        static_cast<std::int64_t>(1 + rng.uniform(3)));
    switch (rng.uniform(3)) {
      case 0: {  // local transfer
        (void)h.submit(from, user, (rng.chance(0.5) ? alice : bob).addr, 0,
                       {}, value);
        break;
      }
      case 1: {  // cross-net transfer to a random other subnet
        Subnet& to = *subnets[rng.uniform(3)];
        if (&to == &from) break;
        actors::CrossParams p;
        p.dest = to.id;
        p.to = user.addr;
        (void)h.submit(from, user, chain::kScaAddr,
                       actors::sca_method::kSendCross, encode(p), value);
        break;
      }
      case 2: {  // burst of local transfers
        for (int i = 0; i < 3; ++i) {
          (void)h.submit(from, user, user.addr, 0, {}, TokenAmount::atto(1));
        }
        break;
      }
    }
  }

  void run_schedule(int ops) {
    for (int i = 0; i < ops; ++i) {
      random_op();
      h.run_for(200 * sim::kMillisecond);
    }
    // Quiesce: let all in-flight cross-msgs and checkpoints settle.
    h.run_for(30 * sim::kSecond);
  }

  // ---------------------------------------------------------- invariants

  void check_invariants() {
    const auto root_sca = h.root().node(0).sca_state();

    // (1) conservation at the root: faucet + genesis allowances fixed.
    // Everything the root ever created is still on the root (funding locks
    // value in the SCA; nothing leaves the root chain's books).
    // We check the root total is stable across the run instead of an
    // absolute: recorded at construction time by the caller.

    for (Subnet* s : {a, b}) {
      const auto& entry = root_sca.subnets.at(s->sa);
      // (2) firewall accounting at quiescence:
      //     child_total_balance - child_burn == tracked supply.
      const TokenAmount child_total = s->node(0).state().total_balance();
      const TokenAmount burnt = s->node(0).balance(chain::kBurnAddr);
      EXPECT_EQ(child_total - burnt, entry.circulating_supply)
          << s->id.to_string();

      // (3) nonce ordering: every committed top-down msg was applied.
      EXPECT_EQ(s->node(0).sca_state().applied_topdown_nonce,
                entry.topdown_nonce)
          << s->id.to_string();

      // (4) SA/SCA agreement on the checkpoint chain.
      const auto sa = h.root().node(0).sa_state(s->sa);
      ASSERT_TRUE(sa.has_value());
      if (!entry.checkpoints.empty()) {
        EXPECT_EQ(sa->last_checkpoint, entry.checkpoints.back());
        EXPECT_EQ(sa->last_checkpoint_epoch, entry.last_checkpoint_epoch);
      }

      // (5) node convergence inside the subnet.
      chain::Epoch min_h = s->node(0).chain().height();
      for (std::size_t i = 1; i < s->size(); ++i) {
        min_h = std::min(min_h, s->node(i).chain().height());
      }
      for (chain::Epoch e = 1; e <= min_h; ++e) {
        const Cid expected = s->node(0).chain().block_at(e)->cid();
        for (std::size_t i = 1; i < s->size(); ++i) {
          ASSERT_EQ(s->node(i).chain().block_at(e)->cid(), expected)
              << s->id.to_string() << " diverges at height " << e;
        }
      }
    }
  }
};

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, InvariantsHoldUnderRandomSchedules) {
  PropertyWorld w(GetParam());
  ASSERT_TRUE(w.ok());
  const TokenAmount root_total_before =
      w.h.root().node(0).state().total_balance();
  w.run_schedule(25);
  // (1) conservation: the root's books never change total.
  EXPECT_EQ(w.h.root().node(0).state().total_balance(), root_total_before);
  w.check_invariants();
}

TEST_P(PropertySweep, InvariantsHoldUnderLossyNetwork) {
  PropertyWorld w(GetParam() + 1000);
  ASSERT_TRUE(w.ok());
  const TokenAmount root_total_before =
      w.h.root().node(0).state().total_balance();
  w.h.network().set_drop_rate(0.05);
  w.run_schedule(15);
  w.h.network().set_drop_rate(0.0);
  w.h.run_for(30 * sim::kSecond);  // settle fully
  EXPECT_EQ(w.h.root().node(0).state().total_balance(), root_total_before);
  w.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace hc::runtime
