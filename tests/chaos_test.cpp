// Chaos sweeps: FaultPlan scenarios x seeds, executed by the ChaosRunner
// with the full invariant suite (firewall/supply conservation, no negative
// balances, no stuck cross-msgs after heal, checkpoint commit at every
// ancestor, replica agreement) checked after every run — plus determinism:
// a scenario/seed pair must reproduce the identical fault timeline and
// byte-identical observability exports.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/runner.hpp"

namespace hc::chaos {
namespace {

RunnerConfig fast_runner_config() {
  RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 0;
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 8 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  return cfg;
}

TEST(ChaosSweep, StandardScenariosHoldInvariantsAcrossSeeds) {
  ChaosRunner runner(fast_runner_config());
  const auto scenarios = ChaosRunner::standard_scenarios();
  ASSERT_GE(scenarios.size(), 6u);
  const auto results = runner.sweep(scenarios, {7, 21, 1234});
  ASSERT_EQ(results.size(), scenarios.size() * 3);
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged) << r.summary();
    EXPECT_TRUE(r.report.ok()) << r.summary();
  }
}

TEST(ChaosSweep, SameSeedRunsAreByteIdentical) {
  ChaosRunner runner(fast_runner_config());
  const auto scenarios = ChaosRunner::standard_scenarios();
  // partition-child stresses the most machinery (stalled submissions,
  // backoff retries, heal); its replay must still be exact.
  const auto& scenario = scenarios.at(2);
  ASSERT_EQ(scenario.name, "partition-child");
  const RunResult a = runner.run(scenario, 42);
  const RunResult b = runner.run(scenario, 42);
  ASSERT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.state_roots, b.state_roots);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  // ... while a different seed shuffles latencies and fault dice.
  const RunResult c = runner.run(scenario, 43);
  ASSERT_TRUE(c.ok()) << c.summary();
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(ChaosSweep, FaultCountersAndTraceMarkersAreRecorded) {
  ChaosRunner runner(fast_runner_config());
  const auto scenarios = ChaosRunner::standard_scenarios();
  const RunResult r = runner.run(scenarios.at(1), 7);  // loss-20
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.faults_injected, 2u);  // drop-rate on, drop-rate off
  EXPECT_NE(r.metrics_json.find("chaos_faults_injected_total"),
            std::string::npos);
  // Random loss at 20% must actually have dropped traffic, attributed to
  // the right reason.
  EXPECT_NE(r.metrics_json.find("reason=random-loss"), std::string::npos);
}

// ------------------------------------------------- durable recovery (§15)

RunnerConfig recovery_runner_config() {
  RunnerConfig cfg = fast_runner_config();
  cfg.durability = true;
  // Bound the resolved-content cache too: the bounded_queues invariant then
  // asserts the recorded peaks stayed under these caps.
  cfg.content_store.max_items = 4096;
  cfg.content_store.max_bytes = 4u << 20;
  return cfg;
}

TEST(ChaosSweep, RecoveryScenariosHoldInvariantsAcrossSeeds) {
  ChaosRunner runner(recovery_runner_config());
  const auto scenarios = ChaosRunner::recovery_scenarios();
  ASSERT_GE(scenarios.size(), 6u);
  const auto results = runner.sweep(scenarios, {7, 1234});
  ASSERT_EQ(results.size(), scenarios.size() * 2);
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged) << r.summary();
    EXPECT_TRUE(r.report.ok()) << r.summary();
  }
}

TEST(ChaosSweep, RecoveryRunsAreByteIdenticalPerSeed) {
  // Disk-fault dice (torn-tail split point, bit-flip position) are part of
  // the deterministic surface: same seed, same damage, same recovery.
  ChaosRunner runner(recovery_runner_config());
  const auto scenarios = ChaosRunner::recovery_scenarios();
  const auto it = std::find_if(scenarios.begin(), scenarios.end(),
                               [](const Scenario& s) {
                                 return s.name == "recover-torn-tail";
                               });
  ASSERT_NE(it, scenarios.end());
  const RunResult a = runner.run(*it, 42);
  const RunResult b = runner.run(*it, 42);
  ASSERT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.state_roots, b.state_roots);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  const RunResult c = runner.run(*it, 43);
  ASSERT_TRUE(c.ok()) << c.summary();
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(ChaosSweep, RecoveryMetricsAreExported) {
  ChaosRunner runner(recovery_runner_config());
  const auto scenarios = ChaosRunner::recovery_scenarios();
  const auto it = std::find_if(scenarios.begin(), scenarios.end(),
                               [](const Scenario& s) {
                                 return s.name == "recover-power-loss";
                               });
  ASSERT_NE(it, scenarios.end());
  const RunResult r = runner.run(*it, 7);
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_NE(r.metrics_json.find("wal_appends_total"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("wal_fsyncs_total"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("recovery_replayed_records_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("recovery_resync_latency_us"),
            std::string::npos);
}

TEST(ChaosSweep, NestedHierarchySurvivesSignerCrash) {
  RunnerConfig cfg = fast_runner_config();
  cfg.children = 1;
  cfg.nested = 1;  // root -> child -> grandchild
  ChaosRunner runner(cfg);
  const auto scenarios = ChaosRunner::standard_scenarios();
  const auto& scenario = scenarios.at(3);
  ASSERT_EQ(scenario.name, "crash-signer");
  const RunResult r = runner.run(scenario, 21);
  EXPECT_TRUE(r.converged) << r.summary();
  EXPECT_TRUE(r.report.ok()) << r.summary();
  // Three subnets took part and report state roots.
  EXPECT_EQ(std::count(r.state_roots.begin(), r.state_roots.end(), '\n'), 3);
}

}  // namespace
}  // namespace hc::chaos
