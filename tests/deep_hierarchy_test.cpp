// Deep-hierarchy scenarios: path messages whose least common ancestor is
// NOT the root, checkpoint aggregation across levels (child checkpoints
// embedded in the parent's own checkpoints), and atomic executions
// coordinated by a mid-level subnet.
//
// Topology used throughout:
//          /root
//            └── mid
//                 ├── left
//                 └── right
#include <gtest/gtest.h>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "runtime/atomic.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params() {
  core::SubnetParams p;
  p.name = "deep";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

struct DeepFixture : ::testing::Test {
  Hierarchy h{[] {
    HierarchyConfig cfg;
    cfg.seed = 31;
    cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
    cfg.root_params = subnet_params();
    cfg.root_validators = 3;
    cfg.root_engine.block_time = 100 * sim::kMillisecond;
    return cfg;
  }()};
  Subnet* mid = nullptr;
  Subnet* left = nullptr;
  Subnet* right = nullptr;
  User alice;

  void SetUp() override {
    consensus::EngineConfig fast;
    fast.block_time = 100 * sim::kMillisecond;
    fast.timeout_base = 300 * sim::kMillisecond;
    auto m = h.spawn_subnet(h.root(), "mid", subnet_params(), 3,
                            TokenAmount::whole(5), fast);
    ASSERT_TRUE(m.ok()) << m.error().to_string();
    mid = m.value();
    auto l = h.spawn_subnet(*mid, "left", subnet_params(), 3,
                            TokenAmount::whole(5), fast);
    ASSERT_TRUE(l.ok()) << l.error().to_string();
    left = l.value();
    auto r = h.spawn_subnet(*mid, "right", subnet_params(), 3,
                            TokenAmount::whole(5), fast);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    right = r.value();

    auto a = h.make_user("deep-alice", TokenAmount::whole(2000));
    ASSERT_TRUE(a.ok());
    alice = a.value();
    // Fund alice in `left` (via two-hop top-down from the root).
    ASSERT_TRUE(h.send_cross(h.root(), alice, left->id, alice.addr,
                             TokenAmount::whole(60))
                    .ok());
    ASSERT_TRUE(h.run_until(
        [&] {
          return left->node(0).balance(alice.addr) == TokenAmount::whole(60);
        },
        120 * sim::kSecond));
  }
};

TEST_F(DeepFixture, PathMessageTurnsAtNonRootLca) {
  // left -> right: LCA is `mid`, NOT the root. The message must go
  // bottom-up one hop (left -> mid via checkpoint), turn around at mid's
  // SCA, and go top-down one hop (mid -> right) — without the rootnet
  // ever seeing a cross-msg.
  const auto root_bu_before =
      h.root().node(0).sca_state().bottomup_nonce;

  User sink{crypto::KeyPair::from_label("deep-sink"),
            Address::key(crypto::KeyPair::from_label("deep-sink")
                             .public_key()
                             .to_bytes())};
  auto r = h.send_cross(*left, alice, right->id, sink.addr,
                        TokenAmount::whole(11));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok()) << r.value().error;

  ASSERT_TRUE(h.run_until(
      [&] {
        return right->node(0).balance(sink.addr) == TokenAmount::whole(11);
      },
      180 * sim::kSecond));

  // The root's SCA never adopted a bottom-up meta for this transfer.
  EXPECT_EQ(h.root().node(0).sca_state().bottomup_nonce, root_bu_before);
  // Mid's books: left lost 11, right gained 11.
  const auto mid_sca = mid->node(0).sca_state();
  EXPECT_EQ(mid_sca.subnets.at(left->sa).circulating_supply,
            TokenAmount::whole(49));
  EXPECT_EQ(mid_sca.subnets.at(right->sa).circulating_supply,
            TokenAmount::whole(11));
}

TEST_F(DeepFixture, ChildCheckpointsAggregateIntoParentCheckpoints) {
  // Paper §III-B / Fig. 2: mid's checkpoints must carry the `children`
  // tree referencing left's and right's checkpoint CIDs, propagating them
  // to the root.
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto mid_sca = mid->node(0).sca_state();
        auto lit = mid_sca.subnets.find(left->sa);
        auto rit = mid_sca.subnets.find(right->sa);
        return lit != mid_sca.subnets.end() &&
               !lit->second.checkpoints.empty() &&
               rit != mid_sca.subnets.end() &&
               !rit->second.checkpoints.empty();
      },
      120 * sim::kSecond));

  // Find a mid checkpoint (committed at the root) whose children tree
  // includes the grandchildren.
  bool saw_grandchild_aggregation = false;
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto& store = h.root().node(0).chain();
        for (chain::Epoch hh = 1; hh <= store.height(); ++hh) {
          const auto* receipts = h.root().node(0).receipts_at(hh);
          if (receipts == nullptr) continue;
          for (const auto& rc : *receipts) {
            for (const auto& ev : rc.events) {
              if (ev.kind != "sca/checkpoint-committed") continue;
              auto cp = decode<core::Checkpoint>(ev.payload);
              if (!cp.ok() || cp.value().source != mid->id) continue;
              for (const auto& child_check : cp.value().children) {
                if (child_check.subnet == left->id ||
                    child_check.subnet == right->id) {
                  saw_grandchild_aggregation = true;
                }
              }
            }
          }
        }
        return saw_grandchild_aggregation;
      },
      120 * sim::kSecond));
  EXPECT_TRUE(saw_grandchild_aggregation);
}

TEST_F(DeepFixture, AtomicExecutionCoordinatedByMidLevelSubnet) {
  // Paper §IV-D: "Generally, subnets will choose the closest common parent
  // as the execution subnet". Parties in left and right coordinate through
  // MID's SCA, not the root's.
  // Fund a second user in `right`.
  auto bob_r = h.make_user("deep-bob", TokenAmount::whole(500));
  ASSERT_TRUE(bob_r.ok());
  User bob = bob_r.value();
  ASSERT_TRUE(h.send_cross(h.root(), bob, right->id, bob.addr,
                           TokenAmount::whole(60))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] { return !right->node(0).balance(bob.addr).is_zero(); },
      120 * sim::kSecond));

  // Deploy KV apps in both leaves.
  auto deploy = [&](Subnet& s, const User& u, const char* val) {
    actors::ExecParams exec;
    exec.code = chain::kCodeKvApp;
    auto dep = h.call(s, u, chain::kInitAddr, actors::init_method::kExec,
                      encode(exec), TokenAmount());
    EXPECT_TRUE(dep.ok() && dep.value().ok());
    const Address app = decode<Address>(dep.value().ret).value();
    actors::KvParams put{to_bytes("item"), to_bytes(val)};
    EXPECT_TRUE(h.call(s, u, app, actors::kv_method::kPut, encode(put),
                       TokenAmount())
                    .ok());
    return app;
  };
  const Address app_l = deploy(*left, alice, "left-item");
  const Address app_r = deploy(*right, bob, "right-item");

  AtomicExecution swap(
      h, *mid,
      {AtomicPartySpec{left, alice, app_l, to_bytes("item")},
       AtomicPartySpec{right, bob, app_r, to_bytes("item")}},
      [](const std::vector<Bytes>& in) {
        return std::vector<Bytes>{in[1], in[0]};
      });
  auto decision = swap.run();
  ASSERT_TRUE(decision.ok()) << decision.error().to_string();
  EXPECT_EQ(decision.value(), actors::AtomicStatus::kCommitted);

  // The execution record lives in MID's SCA; the root never saw it.
  EXPECT_FALSE(mid->node(0).sca_state().atomic_execs.empty());
  EXPECT_TRUE(h.root().node(0).sca_state().atomic_execs.empty());

  // And the swap actually happened.
  actors::KvParams get{to_bytes("item"), {}};
  auto gl = h.call(*left, alice, app_l, actors::kv_method::kGet, encode(get),
                   TokenAmount());
  ASSERT_TRUE(gl.ok() && gl.value().ok());
  EXPECT_EQ(gl.value().ret, to_bytes("right-item"));
}

}  // namespace
}  // namespace hc::runtime
