// Full cross-net round-trips parameterized over every consensus engine and
// every checkpoint signature policy: a subnet running <engine> with
// <policy> receives top-down funds and releases them bottom-up through its
// checkpoints. This is the broadest single compatibility statement in the
// suite: any engine × policy combination must interoperate with the
// hierarchy machinery.
#include <gtest/gtest.h>

#include "runtime/hierarchy.hpp"

namespace hc::runtime {
namespace {

struct SweepCase {
  core::ConsensusType consensus;
  core::SignaturePolicyKind policy;
};

class FullStackSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FullStackSweep, FundAndReleaseRoundTrip) {
  const SweepCase param = GetParam();

  HierarchyConfig cfg;
  cfg.seed = 88 + static_cast<std::uint64_t>(param.consensus) * 10 +
             static_cast<std::uint64_t>(param.policy);
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params.consensus = core::ConsensusType::kPoaRoundRobin;
  cfg.root_params.min_validator_stake = TokenAmount::whole(5);
  cfg.root_params.min_collateral = TokenAmount::whole(10);
  cfg.root_params.checkpoint_period = 5;
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  Hierarchy h(cfg);

  core::SubnetParams params = cfg.root_params;
  params.consensus = param.consensus;
  const std::size_t n_validators = 4;
  params.checkpoint_policy = core::SignaturePolicy{
      param.policy,
      param.policy == core::SignaturePolicyKind::kSingle
          ? 1
          : static_cast<std::uint32_t>(
                core::SignaturePolicy::bft_quorum(n_validators).threshold)};

  consensus::EngineConfig engine;
  engine.block_time = 100 * sim::kMillisecond;
  engine.timeout_base = 400 * sim::kMillisecond;
  auto c = h.spawn_subnet(h.root(), "sweep", params, n_validators,
                          TokenAmount::whole(5), engine);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  Subnet* child = c.value();

  auto alice = h.make_user("sweep-alice", TokenAmount::whole(500));
  ASSERT_TRUE(alice.ok());
  auto fund = h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(30));
  ASSERT_TRUE(fund.ok());
  ASSERT_TRUE(fund.value().ok()) << fund.value().error;
  ASSERT_TRUE(h.run_until(
      [&] {
        return child->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(30);
      },
      120 * sim::kSecond))
      << "top-down funding stalled on "
      << core::consensus_name(param.consensus);

  User sink{crypto::KeyPair::from_label("sweep-sink"),
            Address::key(crypto::KeyPair::from_label("sweep-sink")
                             .public_key()
                             .to_bytes())};
  auto release = h.send_cross(*child, alice.value(), core::SubnetId::root(),
                              sink.addr, TokenAmount::whole(9));
  ASSERT_TRUE(release.ok());
  ASSERT_TRUE(release.value().ok()) << release.value().error;
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(sink.addr) == TokenAmount::whole(9);
      },
      300 * sim::kSecond))
      << "bottom-up release stalled on "
      << core::consensus_name(param.consensus) << " with policy "
      << static_cast<int>(param.policy);

  // Supply books balance at the root.
  EXPECT_EQ(h.root()
                .node(0)
                .sca_state()
                .subnets.at(child->sa)
                .circulating_supply,
            TokenAmount::whole(21));
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name(core::consensus_name(info.param.consensus));
  std::erase(name, '-');
  switch (info.param.policy) {
    case core::SignaturePolicyKind::kSingle: name += "Single"; break;
    case core::SignaturePolicyKind::kMultiSig: name += "Multi"; break;
    case core::SignaturePolicyKind::kThreshold: name += "Threshold"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FullStackSweep,
    ::testing::Values(
        // Every engine with the BFT-quorum multisig policy...
        SweepCase{core::ConsensusType::kPoaRoundRobin,
                  core::SignaturePolicyKind::kMultiSig},
        SweepCase{core::ConsensusType::kPowerLottery,
                  core::SignaturePolicyKind::kMultiSig},
        SweepCase{core::ConsensusType::kTendermint,
                  core::SignaturePolicyKind::kMultiSig},
        SweepCase{core::ConsensusType::kRoundRobinBft,
                  core::SignaturePolicyKind::kMultiSig},
        // ...and the PoA engine with the other two policy kinds.
        SweepCase{core::ConsensusType::kPoaRoundRobin,
                  core::SignaturePolicyKind::kSingle},
        SweepCase{core::ConsensusType::kPoaRoundRobin,
                  core::SignaturePolicyKind::kThreshold}),
    case_name);

}  // namespace
}  // namespace hc::runtime
