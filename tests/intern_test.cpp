// Interned subnet identities (DESIGN.md §17): handle values depend on
// intern order, so NOTHING observable may — these tests pin the observable
// surface (hash, ordering, wire codec, strings) to the content-derived
// seed behavior, and check the process-wide table stays bounded and
// thread-invariant under chaos workloads.
//
// The interner is a process-wide singleton that only grows, and gtest runs
// every TEST in one process: growth assertions therefore use size DELTAS
// around the probed operation, never absolute table sizes.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "chaos/runner.hpp"
#include "core/intern.hpp"
#include "core/subnet_id.hpp"

namespace hc::core {
namespace {

/// The pre-interning std::hash<SubnetId>: an FNV-1a fold over
/// std::hash<Address> of each path element, recomputed per probe. The
/// interner memoizes exactly this value; any drift silently rehashes every
/// unordered_map keyed by SubnetId.
std::size_t seed_hash(const std::vector<Address>& path) {
  std::size_t h = 0xcbf29ce484222325ull;
  for (const auto& a : path) {
    h = (h ^ std::hash<Address>{}(a)) * 0x100000001b3ull;
  }
  return h;
}

/// Build an id by walking child() down `path` (the hot construction path).
SubnetId make_id(const std::vector<Address>& path) {
  SubnetId id = SubnetId::root();
  for (const auto& a : path) id = id.child(a);
  return id;
}

/// The seed wire encoding: varint path length, then each Address object.
Bytes seed_encoding(const std::vector<Address>& path) {
  Bytes out = encode_varint(path.size());
  for (const auto& a : path) {
    const Bytes addr = encode(a);
    out.insert(out.end(), addr.begin(), addr.end());
  }
  return out;
}

// ------------------------------------------------------------------ hash

TEST(InternIdentity, HashMatchesSeedFormula) {
  const std::vector<Address> path = {Address::id(100), Address::id(102),
                                     Address::id(7)};
  const SubnetId id = make_id(path);
  EXPECT_EQ(id.hash(), seed_hash(path));
  EXPECT_EQ(std::hash<SubnetId>{}(id), seed_hash(path));
  // Every prefix hashes per the same formula (parent-pointer reuse must
  // not change the fold).
  EXPECT_EQ(id.parent()->hash(),
            seed_hash({Address::id(100), Address::id(102)}));
  EXPECT_EQ(SubnetId::root().hash(), std::size_t{0xcbf29ce484222325ull});
}

TEST(InternIdentity, HashIgnoresInternOrder) {
  // Fresh addresses so THIS test controls first-intern order: the sibling
  // interned second must still hash identically to the formula.
  const Address late = Address::id(910202);
  const Address early = Address::id(910201);
  const SubnetId b = make_id({late});
  const SubnetId a = make_id({early});
  EXPECT_EQ(a.hash(), seed_hash({early}));
  EXPECT_EQ(b.hash(), seed_hash({late}));
  // Handles canonicalize: re-walking the same path yields the same id.
  EXPECT_EQ(make_id({late}), b);
  std::unordered_map<SubnetId, int> m;
  m[a] = 1;
  m[b] = 2;
  EXPECT_EQ(m.at(make_id({early})), 1);
}

TEST(InternIdentity, OrderingIsPathLexicographic) {
  // Interned deliberately in DESCENDING path order; comparison must sort
  // by content, not by handle age.
  const SubnetId c = make_id({Address::id(920001), Address::id(5)});
  const SubnetId b = make_id({Address::id(920001)});
  const SubnetId a = make_id({Address::id(920000)});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // prefix orders before its extension
  EXPECT_LT(a, c);
  EXPECT_LT(SubnetId::root(), a);
  EXPECT_EQ(a <=> a, std::strong_ordering::equal);
}

// ----------------------------------------------------------------- codec

TEST(InternIdentity, EncodeMatchesSeedLayout) {
  const std::vector<Address> path = {Address::id(100), Address::id(103)};
  EXPECT_EQ(encode(make_id(path)), seed_encoding(path));
  EXPECT_EQ(encode(SubnetId::root()), seed_encoding({}));
}

TEST(InternIdentity, CodecRoundTrip) {
  for (const auto& path : std::vector<std::vector<Address>>{
           {},
           {Address::id(100)},
           {Address::id(100), Address::id(101), Address::id(102),
            Address::id(103)}}) {
    const SubnetId id = make_id(path);
    auto back = decode<SubnetId>(encode(id));
    ASSERT_TRUE(back.ok()) << id.to_string();
    EXPECT_EQ(back.value(), id);
    EXPECT_EQ(back.value().to_string(), id.to_string());
    EXPECT_EQ(back.value().path(), path);
  }
}

TEST(InternIdentity, DecodeRejectsOverDeepPath) {
  Bytes wire = encode_varint(65);
  for (int i = 0; i < 65; ++i) {
    const Bytes a = encode(Address::id(100));
    wire.insert(wire.end(), a.begin(), a.end());
  }
  auto r = decode<SubnetId>(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), Errc::kDecodeError);
}

TEST(InternIdentity, DecodeRejectsTruncatedPath) {
  const Bytes full = seed_encoding({Address::id(100), Address::id(101)});
  const Bytes cut(full.begin(), full.end() - 3);
  EXPECT_FALSE(decode<SubnetId>(cut).ok());
}

// --------------------------------------------------------------- strings

TEST(InternIdentity, StringsAndTopicsAreInternedOnce) {
  const SubnetId id = make_id({Address::id(100), Address::id(102)});
  // Reference stability: repeated calls return THE interned string, not a
  // fresh materialization.
  EXPECT_EQ(&id.to_string(), &id.to_string());
  EXPECT_EQ(&id.topic(), &id.topic());
  EXPECT_EQ(&id.topic(SubnetTopic::kResolve), &id.topic(SubnetTopic::kResolve));
  // Content: topic is "hc" + path string; sub-topics extend the topic.
  EXPECT_EQ(id.topic(), "hc" + id.to_string());
  for (const auto t : {SubnetTopic::kMsgs, SubnetTopic::kConsensus,
                       SubnetTopic::kSigs, SubnetTopic::kResolve}) {
    EXPECT_EQ(id.topic(t).rfind(id.topic() + "/", 0), 0u)
        << id.topic(t) << " does not extend " << id.topic();
  }
  EXPECT_EQ(SubnetId::root().to_string(), "/root");
}

// ---------------------------------------------------------------- growth

TEST(InternGrowth, ChunkedStorageKeepsReferencesStable) {
  auto& interner = SubnetInterner::instance();
  // Force the table across multiple storage blocks (block size 1024) and
  // verify an early entry's interned artifacts never move.
  const SubnetId probe = make_id({Address::id(930000)});
  const std::string* str_before = &probe.to_string();
  const std::vector<Address>* path_before = &probe.path();
  const SubnetId parent = make_id({Address::id(930001)});
  const std::size_t before = interner.size();
  for (std::uint64_t i = 0; i < 2500; ++i) {
    (void)parent.child(Address::id(940000 + i));
  }
  EXPECT_EQ(interner.size(), before + 2500);
  EXPECT_EQ(&probe.to_string(), str_before);
  EXPECT_EQ(&probe.path(), path_before);
  EXPECT_EQ(probe.hash(), seed_hash({Address::id(930000)}));
  // Re-interning the same children is free: no growth.
  const std::size_t grown = interner.size();
  for (std::uint64_t i = 0; i < 2500; ++i) {
    (void)parent.child(Address::id(940000 + i));
  }
  EXPECT_EQ(interner.size(), grown);
  EXPECT_GT(interner.approx_bytes(), 0u);
}

TEST(InternGrowth, ChaosSweepDoesNotLeakInterns) {
  chaos::RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 1;
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 8 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  chaos::Scenario scenario;
  for (const auto& s : chaos::ChaosRunner::standard_scenarios()) {
    if (s.name == "crash-signer") scenario = s;
  }
  ASSERT_EQ(scenario.name, "crash-signer");

  auto& interner = SubnetInterner::instance();
  const chaos::RunResult first = chaos::ChaosRunner(cfg).run(scenario, 77);
  ASSERT_TRUE(first.ok()) << first.summary();
  const std::size_t after_first = interner.size();

  // A same-seed re-run (spawns, crashes, restarts and all) names exactly
  // the same subnet paths: the table must not grow by a single entry.
  const chaos::RunResult second = chaos::ChaosRunner(cfg).run(scenario, 77);
  ASSERT_TRUE(second.ok()) << second.summary();
  EXPECT_EQ(interner.size(), after_first);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.state_roots, second.state_roots);
}

// --------------------------------------------------------- determinism

TEST(InternDeterminism, ThreadCountInvariantWithSpawnsAndCrashes) {
  // Interning is first-come-first-numbered, so worker threads CAN assign
  // different handles run-to-run — the fingerprint (state roots + metrics
  // + trace) proves none of that order ever becomes observable.
  auto make = [](std::size_t threads) {
    chaos::RunnerConfig cfg;
    cfg.children = 2;
    cfg.nested = 1;
    cfg.warmup = sim::kSecond;
    cfg.fault_window = 8 * sim::kSecond;
    cfg.settle = 180 * sim::kSecond;
    cfg.threads = threads;
    return cfg;
  };
  chaos::Scenario scenario;
  for (const auto& s : chaos::ChaosRunner::standard_scenarios()) {
    if (s.name == "crash-signer") scenario = s;
  }
  ASSERT_EQ(scenario.name, "crash-signer");

  const chaos::RunResult ref = chaos::ChaosRunner(make(1)).run(scenario, 31);
  ASSERT_TRUE(ref.ok()) << ref.summary();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const chaos::RunResult r =
        chaos::ChaosRunner(make(threads)).run(scenario, 31);
    ASSERT_TRUE(r.ok()) << threads << " threads: " << r.summary();
    EXPECT_EQ(ref.state_roots, r.state_roots) << threads << " threads";
    EXPECT_EQ(ref.metrics_json, r.metrics_json) << threads << " threads";
    EXPECT_EQ(ref.fingerprint, r.fingerprint) << threads << " threads";
  }
}

}  // namespace
}  // namespace hc::core
