// Wall-clock profiler: attribution correctness, thread-safe merging, and
// the §13 determinism guarantee (profiling must never change what the
// fingerprinted exports contain).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "runtime/hierarchy.hpp"

namespace hc {
namespace {

// Burn at least `us` microseconds of real time inside the current scope.
void busy_wait_us(std::int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

const obs::PhaseStat* find_phase(const obs::ProfileReport& report,
                                 const std::string& name) {
  for (const auto& p : report.phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(Profiler, PhaseInternIsIdempotent) {
  obs::Profiler prof;
  const obs::PhaseId a = prof.phase("alpha");
  const obs::PhaseId b = prof.phase("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, prof.phase("alpha"));
  EXPECT_EQ(b, prof.phase("beta"));
  EXPECT_EQ(prof.phase_count(), 2u);
}

TEST(Profiler, NestedScopesSplitSelfAndCumulative) {
  obs::Profiler prof;
  const obs::PhaseId outer = prof.phase("outer");
  const obs::PhaseId inner = prof.phase("inner");
  {
    obs::ProfileScope so(prof, outer);
    busy_wait_us(300);
    {
      obs::ProfileScope si(prof, inner);
      busy_wait_us(300);
    }
  }
  const obs::ProfileReport report = prof.report();
  const auto* po = find_phase(report, "outer");
  const auto* pi = find_phase(report, "inner");
  ASSERT_NE(po, nullptr);
  ASSERT_NE(pi, nullptr);
  EXPECT_EQ(po->count, 1u);
  EXPECT_EQ(pi->count, 1u);
  // Cumulative outer covers inner; self excludes it.
  EXPECT_GE(po->total_ns, pi->total_ns);
  EXPECT_EQ(po->self_ns, po->total_ns - pi->total_ns);
  EXPECT_GE(pi->self_ns, 250 * 1000);
  EXPECT_GE(po->self_ns, 250 * 1000);
  // Tree: one root ("outer") with one child ("inner").
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(report.roots[0].name, "outer");
  ASSERT_EQ(report.roots[0].children.size(), 1u);
  EXPECT_EQ(report.roots[0].children[0].name, "inner");
  // Every nanosecond is attributed exactly once.
  EXPECT_EQ(report.attributed_ns, po->total_ns);
  EXPECT_EQ(report.scopes, 2u);
}

TEST(Profiler, RecursionCollapsesToOutermostInstance) {
  obs::Profiler prof;
  const obs::PhaseId phase = prof.phase("recurse");
  {
    obs::ProfileScope s1(prof, phase);
    busy_wait_us(200);
    {
      obs::ProfileScope s2(prof, phase);
      busy_wait_us(200);
      {
        obs::ProfileScope s3(prof, phase);
        busy_wait_us(200);
      }
    }
  }
  const obs::ProfileReport report = prof.report();
  const auto* p = find_phase(report, "recurse");
  ASSERT_NE(p, nullptr);
  // All three entries counted, but cumulative time is the OUTERMOST
  // instance only — no double counting of nested self time.
  EXPECT_EQ(p->count, 3u);
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(p->total_ns, report.roots[0].total_ns);
  // Self time sums across all three stack positions == total.
  EXPECT_EQ(p->self_ns, p->total_ns);
  EXPECT_EQ(report.attributed_ns, p->total_ns);
}

TEST(Profiler, DeferredScopeRecordsNothingUntilEntered) {
  obs::Profiler prof;
  const obs::PhaseId phase = prof.phase("deferred");
  {
    obs::ProfileScope s;  // never entered
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.ns_since_enter(), 0);
  }
  EXPECT_TRUE(prof.report().empty());
  {
    obs::ProfileScope s;
    s.enter(prof, phase);
    EXPECT_TRUE(s.active());
    busy_wait_us(100);
    EXPECT_GT(s.ns_since_enter(), 0);
  }
  const obs::ProfileReport report = prof.report();
  const auto* p = find_phase(report, "deferred");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 1u);
}

TEST(Profiler, DisabledScopesAreNoOps) {
  obs::Profiler prof;
  const obs::PhaseId phase = prof.phase("off");
  prof.set_enabled(false);
  { obs::ProfileScope s(prof, phase); busy_wait_us(50); }
  EXPECT_TRUE(prof.report().empty());
  prof.set_enabled(true);
  { obs::ProfileScope s(prof, phase); busy_wait_us(50); }
  EXPECT_FALSE(prof.report().empty());
}

TEST(Profiler, MergesArenasAcrossWorkerThreads) {
  obs::Profiler prof;
  const obs::PhaseId work = prof.phase("lane/work");
  const obs::PhaseId sub = prof.phase("lane/sub");
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        obs::ProfileScope so(prof, work);
        obs::ProfileScope si(prof, sub);
        busy_wait_us(10);
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::ProfileReport report = prof.report();
  const auto* pw = find_phase(report, "lane/work");
  const auto* ps = find_phase(report, "lane/sub");
  ASSERT_NE(pw, nullptr);
  ASSERT_NE(ps, nullptr);
  // Counts merge exactly; wall times merge to something positive.
  EXPECT_EQ(pw->count, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(ps->count, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_GT(ps->self_ns, 0);
  EXPECT_GE(pw->total_ns, ps->total_ns);
  EXPECT_EQ(report.scopes, static_cast<std::uint64_t>(2 * kThreads * kIters));
  // One merged root despite four thread arenas.
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(report.roots[0].name, "lane/work");
}

TEST(Profiler, ResetZeroesAccumulators) {
  obs::Profiler prof;
  const obs::PhaseId phase = prof.phase("transient");
  { obs::ProfileScope s(prof, phase); busy_wait_us(50); }
  EXPECT_FALSE(prof.report().empty());
  prof.reset();
  const obs::ProfileReport after = prof.report();
  EXPECT_EQ(after.attributed_ns, 0);
  EXPECT_EQ(after.scopes, 0u);
  const auto* p = find_phase(after, "transient");
  if (p != nullptr) {
    EXPECT_EQ(p->count, 0u);
    EXPECT_EQ(p->total_ns, 0);
  }
}

TEST(Profiler, ScopeCostIsCheap) {
  // Calibrated enter/exit pair cost powers the overhead estimate; it must
  // be well under 10µs even in sanitizer builds or the <=5% overhead
  // acceptance bound would be meaningless.
  EXPECT_GT(obs::Profiler::scope_cost_ns(), 0);
  EXPECT_LT(obs::Profiler::scope_cost_ns(), 10 * 1000);
}

TEST(ProfileExport, TableFoldedAndJsonAreWellFormed) {
  obs::Profiler prof;
  const obs::PhaseId outer = prof.phase("scheduler/dispatch");
  const obs::PhaseId inner = prof.phase("chain/execute");
  {
    obs::ProfileScope so(prof, outer);
    busy_wait_us(200);
    obs::ProfileScope si(prof, inner);
    busy_wait_us(200);
  }
  const obs::ProfileReport report = prof.report();

  const std::string table = obs::profile_top_table(report, 5);
  EXPECT_NE(table.find("scheduler/dispatch"), std::string::npos);
  EXPECT_NE(table.find("chain/execute"), std::string::npos);
  EXPECT_NE(table.find("attributed"), std::string::npos);

  const std::string folded = obs::profile_to_folded(report);
  // Exactly two stacks: the root and the nested path, 'name ns' per line.
  EXPECT_NE(folded.find("scheduler/dispatch "), std::string::npos);
  EXPECT_NE(folded.find("scheduler/dispatch;chain/execute "),
            std::string::npos);
  std::int64_t folded_sum = 0;
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = folded.substr(pos, eol - pos);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    folded_sum += std::stoll(line.substr(space + 1));
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 2u);
  // Folded self times partition attributed time exactly.
  EXPECT_EQ(folded_sum, report.attributed_ns);

  const std::string json = obs::profile_to_json(report);
  EXPECT_NE(json.find("\"attributed_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"overhead_ns_est\""), std::string::npos);
  EXPECT_NE(json.find("scheduler/dispatch"), std::string::npos);
}

// §13 acceptance: enabling/disabling the profiler must not change one byte
// of the deterministic exports (it writes only to thread-private arenas,
// never to the registry or tracer).
TEST(ProfileDeterminism, ExportsAreByteIdenticalWithProfilingToggled) {
  auto run = [](bool profiled) {
    obs::Profiler::instance().set_enabled(profiled);
    runtime::HierarchyConfig cfg;
    cfg.seed = 20260809;
    runtime::Hierarchy h(cfg);
    auto user = h.make_user("prof-guard", TokenAmount::whole(100));
    EXPECT_TRUE(user.ok());
    h.run_for(3 * sim::kSecond);
    obs::Profiler::instance().set_enabled(true);
    return obs::metrics_to_json(h.obs().metrics) + "\n" +
           obs::trace_to_chrome_json(h.obs().tracer);
  };
  const std::string with_profiler = run(true);
  const std::string without_profiler = run(false);
  EXPECT_EQ(with_profiler, without_profiler);
}

}  // namespace
}  // namespace hc
