// Tests for the light client: checkpoint-chain verification with only the
// subnet's registration facts, both unit-level and fed from a live subnet.
#include <gtest/gtest.h>

#include "core/light_client.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::core {
namespace {

struct LightClientFixture : ::testing::Test {
  SubnetId subnet = SubnetId::root().child(Address::id(100));
  std::vector<crypto::KeyPair> keys;
  std::vector<crypto::PublicKey> validators;
  SignaturePolicy policy{SignaturePolicyKind::kMultiSig, 2};

  LightClientFixture() {
    for (int i = 0; i < 3; ++i) {
      keys.push_back(crypto::KeyPair::from_label("lc-" + std::to_string(i)));
      validators.push_back(keys.back().public_key());
    }
  }

  SignedCheckpoint make(chain::Epoch epoch, const Cid& prev,
                        std::initializer_list<int> signers) {
    SignedCheckpoint sc;
    sc.checkpoint.source = subnet;
    sc.checkpoint.epoch = epoch;
    sc.checkpoint.proof =
        Cid::of(CidCodec::kBlock, to_bytes("b" + std::to_string(epoch)));
    sc.checkpoint.prev = prev;
    for (int i : signers) sc.add_signature(keys[static_cast<std::size_t>(i)]);
    return sc;
  }
};

TEST_F(LightClientFixture, AcceptsValidChain) {
  LightClient lc(subnet, policy, validators, 10);
  auto first = make(10, Cid(), {0, 1});
  ASSERT_TRUE(lc.advance(first).ok());
  auto second = make(20, first.checkpoint.cid(), {1, 2});
  ASSERT_TRUE(lc.advance(second).ok());
  EXPECT_EQ(lc.latest_epoch(), 20);
  EXPECT_EQ(lc.accepted_count(), 2u);
  EXPECT_TRUE(lc.checkpoint_accepted(first.checkpoint.cid()));
}

TEST_F(LightClientFixture, RejectsBrokenPrevChain) {
  LightClient lc(subnet, policy, validators, 10);
  ASSERT_TRUE(lc.advance(make(10, Cid(), {0, 1})).ok());
  // Skips the prev pointer.
  auto orphan = make(20, Cid(), {0, 1});
  EXPECT_FALSE(lc.advance(orphan).ok());
  EXPECT_EQ(lc.latest_epoch(), 10);
}

TEST_F(LightClientFixture, RejectsInsufficientSignatures) {
  LightClient lc(subnet, policy, validators, 10);
  EXPECT_FALSE(lc.advance(make(10, Cid(), {0})).ok());  // 1 < threshold 2
}

TEST_F(LightClientFixture, RejectsStaleAndMisaligned) {
  LightClient lc(subnet, policy, validators, 10);
  ASSERT_TRUE(lc.advance(make(10, Cid(), {0, 1})).ok());
  EXPECT_FALSE(
      lc.advance(make(10, lc.latest_cid(), {0, 1})).ok());  // stale epoch
  EXPECT_FALSE(
      lc.advance(make(25, lc.latest_cid(), {0, 1})).ok());  // misaligned
}

TEST_F(LightClientFixture, RejectsForeignSubnet) {
  LightClient lc(subnet, policy, validators, 10);
  auto sc = make(10, Cid(), {0, 1});
  sc.checkpoint.source = SubnetId::root().child(Address::id(999));
  sc.signatures.clear();
  sc.add_signature(keys[0]);
  sc.add_signature(keys[1]);
  EXPECT_FALSE(lc.advance(sc).ok());
}

TEST_F(LightClientFixture, TracksCommittedBatches) {
  LightClient lc(subnet, policy, validators, 10);
  auto sc = make(10, Cid(), {});
  CrossMsgMeta meta;
  meta.from = subnet;
  meta.to = SubnetId::root();
  meta.msgs_cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("batch"));
  sc.checkpoint.cross_meta.push_back(meta);
  sc.add_signature(keys[0]);
  sc.add_signature(keys[1]);
  ASSERT_TRUE(lc.advance(sc).ok());
  EXPECT_TRUE(lc.batch_committed(meta.msgs_cid));
  EXPECT_FALSE(
      lc.batch_committed(Cid::of(CidCodec::kCrossMsgs, to_bytes("other"))));
}

TEST_F(LightClientFixture, ValidatorSetRotation) {
  LightClient lc(subnet, policy, validators, 10);
  ASSERT_TRUE(lc.advance(make(10, Cid(), {0, 1})).ok());
  // Validators 0 and 1 leave; a new set takes over.
  std::vector<crypto::KeyPair> next_keys;
  std::vector<crypto::PublicKey> next_vals;
  for (int i = 0; i < 2; ++i) {
    next_keys.push_back(
        crypto::KeyPair::from_label("lc-next-" + std::to_string(i)));
    next_vals.push_back(next_keys.back().public_key());
  }
  // Old set can no longer advance after rotation...
  lc.set_validators(next_vals);
  EXPECT_FALSE(lc.advance(make(20, lc.latest_cid(), {0, 1})).ok());
  // ...the new set can.
  SignedCheckpoint sc = make(20, lc.latest_cid(), {});
  sc.add_signature(next_keys[0]);
  sc.add_signature(next_keys[1]);
  EXPECT_TRUE(lc.advance(sc).ok());
}

// ------------------------------------------------------------ live subnet

TEST(LightClientLive, VerifiesCheckpointsFromARunningSubnet) {
  runtime::HierarchyConfig cfg;
  cfg.seed = 55;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params.consensus = ConsensusType::kPoaRoundRobin;
  cfg.root_params.min_validator_stake = TokenAmount::whole(5);
  cfg.root_params.min_collateral = TokenAmount::whole(10);
  cfg.root_params.checkpoint_period = 5;
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  runtime::Hierarchy h(cfg);

  core::SubnetParams params = cfg.root_params;
  params.checkpoint_policy =
      core::SignaturePolicy{SignaturePolicyKind::kMultiSig, 2};
  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto c = h.spawn_subnet(h.root(), "lc-live", params, 3,
                          TokenAmount::whole(5), fast);
  ASSERT_TRUE(c.ok());
  runtime::Subnet* child = c.value();

  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        auto it = sca.subnets.find(child->sa);
        return it != sca.subnets.end() && it->second.checkpoints.size() >= 3;
      },
      120 * sim::kSecond));

  // Build the light client from the SA's registration facts (what any
  // parent-chain observer can read).
  const auto sa = h.root().node(0).sa_state(child->sa);
  ASSERT_TRUE(sa.has_value());
  LightClient lc(child->id, sa->params.checkpoint_policy,
                 sa->validator_keys(), sa->params.checkpoint_period);

  // Replay the SubmitCheckpoint messages observed on the root chain.
  const auto& store = h.root().node(0).chain();
  int advanced = 0;
  for (chain::Epoch hh = 1; hh <= store.height(); ++hh) {
    const auto* block = store.block_at(hh);
    for (const auto& sm : block->messages) {
      if (sm.message.to != child->sa ||
          sm.message.method != actors::sa_method::kSubmitCheckpoint) {
        continue;
      }
      auto sc = decode<SignedCheckpoint>(sm.message.params);
      if (!sc.ok()) continue;
      if (lc.advance(sc.value()).ok()) ++advanced;
    }
  }
  EXPECT_GE(advanced, 3);
  EXPECT_EQ(lc.latest_epoch(),
            h.root()
                .node(0)
                .sca_state()
                .subnets.at(child->sa)
                .last_checkpoint_epoch);
}

}  // namespace
}  // namespace hc::core
