// Adversarial robustness: malformed and forged network input, recursion
// bombs, and resource-exhaustion guards. Every handler that touches
// network-supplied bytes must survive arbitrary garbage.
#include <gtest/gtest.h>

#include "actors/methods.hpp"
#include "consensus/wire.hpp"
#include "runtime/hierarchy.hpp"
#include "sim/rng.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params() {
  core::SubnetParams p;
  p.name = "rob";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

HierarchyConfig fast_config() {
  HierarchyConfig cfg;
  cfg.seed = 1234;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = subnet_params();
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  return cfg;
}

struct RobustnessFixture : ::testing::Test {
  Hierarchy h{fast_config()};
  net::NodeId attacker = 0;

  void SetUp() override { attacker = h.network().add_node(); }

  /// Spray `count` random byte blobs into `topic`.
  void spray_garbage(const std::string& topic, int count,
                     std::uint64_t seed) {
    sim::Rng rng(seed);
    for (int i = 0; i < count; ++i) {
      Bytes junk(rng.uniform(512) + 1);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(256));
      h.network().publish(attacker, topic, std::move(junk));
      h.run_for(10 * sim::kMillisecond);
    }
  }
};

TEST_F(RobustnessFixture, GarbageOnEveryTopicDoesNotHaltTheChain) {
  const auto& root_id = h.root().id;
  const chain::Epoch before = h.root().node(0).chain().height();
  for (const std::string& topic :
       {Topics::msgs(root_id), Topics::consensus(root_id),
        Topics::signatures(root_id), Topics::resolve(root_id)}) {
    spray_garbage(topic, 30, std::hash<std::string>{}(topic));
  }
  h.run_for(3 * sim::kSecond);
  EXPECT_GT(h.root().node(0).chain().height(), before + 10);
}

TEST_F(RobustnessFixture, ForgedConsensusBlocksRejected) {
  // A non-validator signs well-formed consensus block messages: the
  // engines must reject them on the authority check.
  const auto forger = crypto::KeyPair::from_label("forger");
  const chain::Epoch target = h.root().node(0).chain().height() + 1;

  chain::Block fake;
  fake.header.miner = Address::key(forger.public_key().to_bytes());
  fake.header.height = target;
  fake.header.parent = h.root().node(0).chain().head().cid();
  fake.header.state_root = Cid::of(CidCodec::kStateRoot, to_bytes("fake"));
  fake.header.msgs_root = fake.compute_msgs_root();

  auto msg = consensus::WireMsg::make(consensus::WireKind::kBlock, target, 0,
                                      fake.cid(), encode(fake), forger);
  h.network().publish(attacker, Topics::consensus(h.root().id), encode(msg));
  h.run_for(2 * sim::kSecond);
  // The forged block never entered any chain.
  const auto* committed = h.root().node(0).chain().block_at(target);
  if (committed != nullptr) {
    EXPECT_NE(committed->cid(), fake.cid());
  }
}

TEST_F(RobustnessFixture, ForgedCheckpointSignatureSharesIgnored) {
  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto c = h.spawn_subnet(h.root(), "rob-child", subnet_params(), 3,
                          TokenAmount::whole(5), fast);
  ASSERT_TRUE(c.ok());
  Subnet* child = c.value();

  // Outsider floods forged signature shares for future epochs.
  const auto outsider = crypto::KeyPair::from_label("sig-forger");
  for (chain::Epoch epoch = 5; epoch <= 50; epoch += 5) {
    SigShare share;
    share.epoch = epoch;
    share.checkpoint_cid = Cid::of(CidCodec::kCheckpoint, to_bytes("forged"));
    share.signer = outsider.public_key();
    share.signature = outsider.sign(to_bytes("junk"));
    h.network().publish(attacker, Topics::signatures(child->id),
                        encode(share));
  }
  // Checkpoints still flow normally.
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        auto it = sca.subnets.find(child->sa);
        return it != sca.subnets.end() && !it->second.checkpoints.empty();
      },
      120 * sim::kSecond));
}

TEST_F(RobustnessFixture, ForgedResolutionContentRejectedByHashCheck) {
  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto c = h.spawn_subnet(h.root(), "rob-child2", subnet_params(), 3,
                          TokenAmount::whole(5), fast);
  ASSERT_TRUE(c.ok());
  Subnet* child = c.value();
  auto alice = h.make_user("rob-alice", TokenAmount::whole(500));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(20))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] { return !child->node(0).balance(alice.value().addr).is_zero(); },
      60 * sim::kSecond));

  // Attacker pre-floods the root's resolve topic with forged "resolve"
  // payloads for random CIDs — and even tries to front-run real CIDs with
  // wrong bytes; content addressing must reject them all.
  User sink{crypto::KeyPair::from_label("rob-sink"),
            Address::key(
                crypto::KeyPair::from_label("rob-sink").public_key()
                    .to_bytes())};
  auto r = h.send_cross(*child, alice.value(), core::SubnetId::root(),
                        sink.addr, TokenAmount::whole(6));
  ASSERT_TRUE(r.ok());

  for (int i = 0; i < 20; ++i) {
    ResolutionMsg forged;
    forged.kind = ResolutionKind::kResolve;
    forged.cid = Cid::of(CidCodec::kCrossMsgs,
                         to_bytes("guess-" + std::to_string(i)));
    forged.content = to_bytes("malicious-" + std::to_string(i));
    h.network().publish(attacker, Topics::resolve(core::SubnetId::root()),
                        encode(forged));
  }
  // The legit transfer still settles with the correct amount.
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(sink.addr) == TokenAmount::whole(6);
      },
      120 * sim::kSecond));
}

TEST_F(RobustnessFixture, MempoolSprayFromUnfundedAccountsIsHarmless) {
  // Thousands of validly-signed messages from accounts with no balance:
  // they enter mempools but never execute, and the chain keeps moving.
  sim::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto key = crypto::KeyPair::from_label("spam-" + std::to_string(i));
    chain::Message m;
    m.from = Address::key(key.public_key().to_bytes());
    m.to = Address::id(1);
    m.nonce = 0;
    m.gas_limit = 1 << 20;
    m.gas_price = TokenAmount::atto(1);
    h.network().publish(attacker, Topics::msgs(h.root().id),
                        encode(chain::SignedMessage::sign(std::move(m), key)));
  }
  const chain::Epoch before = h.root().node(0).chain().height();
  h.run_for(3 * sim::kSecond);
  EXPECT_GT(h.root().node(0).chain().height(), before + 10);
  // None of the spam executed (senders do not exist).
  EXPECT_FALSE(h.root().node(0).state().has(Address::id(1)) &&
               !h.root().node(0).balance(Address::id(1)).is_zero());
}

}  // namespace
}  // namespace hc::runtime
