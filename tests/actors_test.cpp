// Unit tests for the actor layer: Init/Account/KV actors, SA lifecycle
// (join/leave/kill/checkpoints/slashing) and SCA mechanics (registration,
// collateral, cross-msgs, firewall, checkpoint window, atomic execution).
#include <gtest/gtest.h>

#include "harness.hpp"

namespace hc::testing {
namespace {

using actors::sa_method::kGetInfo;
using actors::sa_method::kJoin;
using actors::sa_method::kKill;
using actors::sa_method::kLeave;
using actors::sa_method::kSubmitCheckpoint;
namespace sca = actors::sca_method;
namespace kv = actors::kv_method;

core::SubnetParams default_params(std::uint32_t threshold = 1) {
  core::SubnetParams p;
  p.name = "testnet";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 10;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, threshold};
  return p;
}

Bytes join_params(const User& u) {
  return encode(actors::JoinParams{u.key.public_key()});
}

struct ActorsFixture : ::testing::Test {
  ChainWorld world;

  /// Deploy an SA and have `validators` join with `stake` each.
  Address setup_subnet(const core::SubnetParams& params,
                       std::vector<User*> validators, TokenAmount stake) {
    Address sa = world.deploy_sa(*validators[0], params);
    EXPECT_TRUE(sa.valid());
    for (User* v : validators) {
      auto r = world.call(*v, sa, kJoin, join_params(*v), stake);
      EXPECT_TRUE(r.ok()) << r.error;
    }
    return sa;
  }
};

// ------------------------------------------------------------- init actor

TEST_F(ActorsFixture, InitDeploysActorsWithSequentialIds) {
  User& alice = world.user("alice");
  Address a = world.deploy_sa(alice, default_params());
  Address b = world.deploy_sa(alice, default_params());
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(a, Address::id(100));
  EXPECT_EQ(b, Address::id(101));
}

TEST_F(ActorsFixture, InitRefusesReservedCodes) {
  User& alice = world.user("alice");
  actors::ExecParams exec;
  exec.code = chain::kCodeSca;
  auto r = world.call(alice, chain::kInitAddr, actors::init_method::kExec,
                      encode(exec), TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(ActorsFixture, AccountRejectsMethodCalls) {
  User& alice = world.user("alice");
  User& bob = world.user("bob");
  auto r = world.call(alice, bob.addr, 42, {}, TokenAmount());
  EXPECT_EQ(r.exit, chain::ExitCode::kActorError);
}

// --------------------------------------------------------------- kv actor

TEST_F(ActorsFixture, KvPutGetLockCycle) {
  User& alice = world.user("alice");
  actors::ExecParams exec;
  exec.code = chain::kCodeKvApp;
  auto dep = world.call(alice, chain::kInitAddr, actors::init_method::kExec,
                        encode(exec), TokenAmount());
  ASSERT_TRUE(dep.ok());
  const Address app = decode<Address>(dep.ret).value();

  actors::KvParams put{to_bytes("k"), to_bytes("v1")};
  ASSERT_TRUE(world.call(alice, app, kv::kPut, encode(put), {}).ok());

  actors::KvParams get{to_bytes("k"), {}};
  auto got = world.call(alice, app, kv::kGet, encode(get), {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ret, to_bytes("v1"));

  // Lock freezes writes (atomic-execution input, paper §IV-D).
  auto locked = world.call(alice, app, kv::kLock, encode(get), {});
  ASSERT_TRUE(locked.ok());
  EXPECT_EQ(locked.ret, to_bytes("v1"));  // returns the input state
  actors::KvParams put2{to_bytes("k"), to_bytes("v2")};
  EXPECT_FALSE(world.call(alice, app, kv::kPut, encode(put2), {}).ok());

  // ApplyOutput installs the atomic result and unlocks.
  actors::KvParams out{to_bytes("k"), to_bytes("swapped")};
  ASSERT_TRUE(world.call(alice, app, kv::kApplyOutput, encode(out), {}).ok());
  got = world.call(alice, app, kv::kGet, encode(get), {});
  EXPECT_EQ(got.ret, to_bytes("swapped"));
  EXPECT_TRUE(world.call(alice, app, kv::kPut, encode(put2), {}).ok());
}

// ------------------------------------------------------- SA join/register

TEST_F(ActorsFixture, JoinBelowMinStakeRejected) {
  User& v = world.user("val");
  Address sa = world.deploy_sa(v, default_params());
  auto r = world.call(v, sa, kJoin, join_params(v), TokenAmount::whole(1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit, chain::ExitCode::kSysInsufficientFunds);
}

TEST_F(ActorsFixture, JoinCannotUseSomeoneElsesKey) {
  User& v = world.user("val");
  User& w = world.user("other");
  Address sa = world.deploy_sa(v, default_params());
  auto r = world.call(v, sa, kJoin, join_params(w), TokenAmount::whole(10));
  EXPECT_FALSE(r.ok());
}

TEST_F(ActorsFixture, RegistrationHappensAtCollateralThreshold) {
  User& v0 = world.user("v0");
  User& v1 = world.user("v1");
  Address sa = world.deploy_sa(v0, default_params());

  // First join: 5 < min_collateral 10 — not yet registered.
  ASSERT_TRUE(world.call(v0, sa, kJoin, join_params(v0), TokenAmount::whole(5))
                  .ok());
  EXPECT_FALSE(world.sa_state(sa).registered);
  EXPECT_TRUE(world.sca_state().subnets.empty());

  // Second join crosses the threshold: SA registers with the SCA.
  ASSERT_TRUE(world.call(v1, sa, kJoin, join_params(v1), TokenAmount::whole(5))
                  .ok());
  const auto sa_st = world.sa_state(sa);
  EXPECT_TRUE(sa_st.registered);
  EXPECT_EQ(sa_st.subnet_id, core::SubnetId::root().child(sa));

  const auto sca_st = world.sca_state();
  ASSERT_EQ(sca_st.subnets.size(), 1u);
  const auto& entry = sca_st.subnets.begin()->second;
  EXPECT_EQ(entry.id, sa_st.subnet_id);
  EXPECT_EQ(entry.collateral, TokenAmount::whole(10));
  EXPECT_EQ(entry.status, core::SubnetStatus::kActive);
  // Collateral physically moved into the SCA.
  EXPECT_EQ(world.balance(chain::kScaAddr), TokenAmount::whole(10));
}

TEST_F(ActorsFixture, LaterJoinsAddStake) {
  User& v0 = world.user("v0");
  User& v1 = world.user("v1");
  Address sa = setup_subnet(default_params(), {&v0}, TokenAmount::whole(10));
  ASSERT_TRUE(world.call(v1, sa, kJoin, join_params(v1), TokenAmount::whole(7))
                  .ok());
  EXPECT_EQ(world.sca_state().subnets.begin()->second.collateral,
            TokenAmount::whole(17));
}

// --------------------------------------------------------- SA leave/kill

TEST_F(ActorsFixture, LeaveRefundsStakeAndMayDeactivate) {
  User& v0 = world.user("v0");
  User& v1 = world.user("v1");
  Address sa = setup_subnet(default_params(), {&v0, &v1},
                            TokenAmount::whole(6));
  // Total collateral 12 >= 10 (active). v1 leaves: 6 < 10 -> inactive.
  const TokenAmount before = world.balance(v1.addr);
  auto r = world.call(v1, sa, kLeave, {}, TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(world.balance(v1.addr), before);  // refund arrived (minus gas)
  const auto sca_st = world.sca_state();
  const auto& entry = sca_st.subnets.begin()->second;
  EXPECT_EQ(entry.collateral, TokenAmount::whole(6));
  EXPECT_EQ(entry.status, core::SubnetStatus::kInactive);
  EXPECT_EQ(world.sa_state(sa).validators.size(), 1u);
}

TEST_F(ActorsFixture, RejoinReactivatesSubnet) {
  User& v0 = world.user("v0");
  User& v1 = world.user("v1");
  Address sa = setup_subnet(default_params(), {&v0, &v1},
                            TokenAmount::whole(6));
  ASSERT_TRUE(world.call(v1, sa, kLeave, {}, TokenAmount()).ok());
  ASSERT_EQ(world.sca_state().subnets.begin()->second.status,
            core::SubnetStatus::kInactive);
  ASSERT_TRUE(world.call(v1, sa, kJoin, join_params(v1), TokenAmount::whole(6))
                  .ok());
  EXPECT_EQ(world.sca_state().subnets.begin()->second.status,
            core::SubnetStatus::kActive);
}

TEST_F(ActorsFixture, NonValidatorCannotLeave) {
  User& v0 = world.user("v0");
  User& mallory = world.user("mallory");
  Address sa = setup_subnet(default_params(), {&v0}, TokenAmount::whole(10));
  EXPECT_FALSE(world.call(mallory, sa, kLeave, {}, TokenAmount()).ok());
}

TEST_F(ActorsFixture, KillRequiresEmptyValidatorSet) {
  User& v0 = world.user("v0");
  Address sa = setup_subnet(default_params(), {&v0}, TokenAmount::whole(10));
  EXPECT_FALSE(world.call(v0, sa, kKill, {}, TokenAmount()).ok());
  ASSERT_TRUE(world.call(v0, sa, kLeave, {}, TokenAmount()).ok());
  auto r = world.call(v0, sa, kKill, {}, TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(world.sa_state(sa).killed);
  EXPECT_EQ(world.sca_state().subnets.begin()->second.status,
            core::SubnetStatus::kKilled);
  // A killed SA refuses everything.
  EXPECT_FALSE(world.call(v0, sa, kJoin, join_params(v0),
                          TokenAmount::whole(10))
                   .ok());
}

// ------------------------------------------------------------ checkpoints

struct CheckpointFixture : ActorsFixture {
  User* v0 = nullptr;
  User* v1 = nullptr;
  User* v2 = nullptr;
  Address sa;
  core::SubnetId subnet;

  void SetUp() override {
    v0 = &world.user("v0");
    v1 = &world.user("v1");
    v2 = &world.user("v2");
    sa = setup_subnet(default_params(/*threshold=*/2), {v0, v1, v2},
                      TokenAmount::whole(5));
    subnet = core::SubnetId::root().child(sa);
  }

  core::SignedCheckpoint make_signed(chain::Epoch epoch, Cid prev,
                                     std::vector<User*> signers) {
    core::SignedCheckpoint sc;
    sc.checkpoint.source = subnet;
    sc.checkpoint.epoch = epoch;
    sc.checkpoint.proof =
        Cid::of(CidCodec::kBlock, to_bytes("blk@" + std::to_string(epoch)));
    sc.checkpoint.prev = prev;
    for (User* u : signers) sc.add_signature(u->key);
    return sc;
  }
};

TEST_F(CheckpointFixture, ValidCheckpointFlowsToSca) {
  auto sc = make_signed(10, Cid(), {v0, v1});
  auto r = world.call(*v0, sa, kSubmitCheckpoint, encode(sc), TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  const auto sca_st = world.sca_state();
  const auto& entry = sca_st.subnets.begin()->second;
  ASSERT_EQ(entry.checkpoints.size(), 1u);
  EXPECT_EQ(entry.checkpoints[0], sc.checkpoint.cid());
  EXPECT_EQ(entry.last_checkpoint_epoch, 10);
  EXPECT_EQ(world.sa_state(sa).last_checkpoint, sc.checkpoint.cid());
}

TEST_F(CheckpointFixture, PolicyThresholdEnforced) {
  auto sc = make_signed(10, Cid(), {v0});  // 1 < threshold 2
  EXPECT_FALSE(
      world.call(*v0, sa, kSubmitCheckpoint, encode(sc), TokenAmount()).ok());
}

TEST_F(CheckpointFixture, PrevLinkageEnforced) {
  auto first = make_signed(10, Cid(), {v0, v1});
  ASSERT_TRUE(world.call(*v0, sa, kSubmitCheckpoint, encode(first), {}).ok());
  // Wrong prev.
  auto bad = make_signed(20, Cid(), {v0, v1});
  EXPECT_FALSE(world.call(*v0, sa, kSubmitCheckpoint, encode(bad), {}).ok());
  // Correct prev.
  auto good = make_signed(20, first.checkpoint.cid(), {v0, v1});
  EXPECT_TRUE(world.call(*v0, sa, kSubmitCheckpoint, encode(good), {}).ok());
}

TEST_F(CheckpointFixture, StaleEpochRejected) {
  auto first = make_signed(10, Cid(), {v0, v1});
  ASSERT_TRUE(world.call(*v0, sa, kSubmitCheckpoint, encode(first), {}).ok());
  auto stale = make_signed(10, first.checkpoint.cid(), {v0, v1});
  EXPECT_FALSE(world.call(*v0, sa, kSubmitCheckpoint, encode(stale), {}).ok());
}

TEST_F(CheckpointFixture, OutsiderSignaturesRejected) {
  User& outsider = world.user("outsider");
  core::SignedCheckpoint sc = make_signed(10, Cid(), {v0});
  sc.add_signature(outsider.key);
  EXPECT_FALSE(world.call(*v0, sa, kSubmitCheckpoint, encode(sc), {}).ok());
}

// --------------------------------------------------------------- slashing

TEST_F(CheckpointFixture, FraudProofSlashesEquivocator) {
  // v0 signs two conflicting checkpoints for epoch 10.
  auto a = make_signed(10, Cid(), {v0, v1});
  auto b = make_signed(10, Cid(), {v0, v2});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  // Re-sign b (proof changed after signing in make_signed).
  b.signatures.clear();
  b.add_signature(v0->key);
  b.add_signature(v2->key);

  core::FraudProof proof{a, b};
  const TokenAmount collateral_before =
      world.sca_state().subnets.begin()->second.collateral;

  User& reporter = world.user("reporter");
  auto r = world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                      encode(proof), TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;

  const auto sca_after = world.sca_state();
  const auto& entry = sca_after.subnets.begin()->second;
  // v0's 5-token stake slashed off the collateral and quarantined in the
  // pot (NOT kBurnAddr: slashes have no parent-side release, so burning
  // them would desync the parent's circulating-supply figure).
  EXPECT_EQ(entry.collateral, collateral_before - TokenAmount::whole(5));
  EXPECT_EQ(world.balance(chain::kSlashPotAddr), TokenAmount::whole(5));
  EXPECT_EQ(world.balance(chain::kBurnAddr), TokenAmount());
  // v0 removed from the validator set.
  const auto sa_st = world.sa_state(sa);
  EXPECT_EQ(sa_st.validators.size(), 2u);
  for (const auto& v : sa_st.validators) {
    EXPECT_NE(v.pubkey, v0->key.public_key());
  }
  // 15 - 5 = 10 >= min; still active.
  EXPECT_EQ(entry.status, core::SubnetStatus::kActive);
}

TEST_F(CheckpointFixture, SlashingBelowMinimumDeactivates) {
  // Slash two validators (10 of 15) -> collateral 5 < 10 -> inactive.
  auto a = make_signed(10, Cid(), {v0, v1});
  auto b = make_signed(10, Cid(), {v0, v1});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  b.signatures.clear();
  b.add_signature(v0->key);
  b.add_signature(v1->key);

  User& reporter = world.user("reporter");
  auto r = world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                      encode(core::FraudProof{a, b}), TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(world.sca_state().subnets.begin()->second.status,
            core::SubnetStatus::kInactive);
}

TEST_F(CheckpointFixture, InvalidFraudProofRejected) {
  auto a = make_signed(10, Cid(), {v0, v1});
  User& reporter = world.user("reporter");
  // Identical checkpoints: no equivocation.
  auto r = world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                      encode(core::FraudProof{a, a}), TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(CheckpointFixture, FraudProofReplayAndMirrorRejected) {
  auto a = make_signed(10, Cid(), {v0, v1});
  auto b = make_signed(10, Cid(), {v0, v2});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  b.signatures.clear();
  b.add_signature(v0->key);
  b.add_signature(v2->key);
  // A mirrored proof hashes to the same canonical digest.
  EXPECT_EQ(core::FraudProof({a, b}).digest(),
            core::FraudProof({b, a}).digest());

  User& reporter = world.user("reporter");
  ASSERT_TRUE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                         encode(core::FraudProof{a, b}), TokenAmount())
                  .ok());
  const TokenAmount collateral =
      world.sca_state().subnets.begin()->second.collateral;

  // Replay and mirror both conflict instead of slashing twice.
  EXPECT_FALSE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                          encode(core::FraudProof{a, b}), TokenAmount())
                   .ok());
  EXPECT_FALSE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                          encode(core::FraudProof{b, a}), TokenAmount())
                   .ok());
  const auto sca_st = world.sca_state();
  EXPECT_EQ(sca_st.subnets.begin()->second.collateral, collateral);
  EXPECT_EQ(sca_st.slash_records.size(), 1u);
  EXPECT_EQ(sca_st.fraud_digests.size(), 1u);
}

TEST_F(CheckpointFixture, DifferentlyAssembledProofCannotDoubleSlash) {
  // v0 equivocates; two reporters assemble DIFFERENT proofs over the same
  // offence (other co-signer, other forged side -> distinct digests). The
  // per-(subnet, epoch, signer) slash record must stop the second one.
  auto honest = make_signed(10, Cid(), {v0, v1});
  auto fork1 = make_signed(10, Cid(), {});
  fork1.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork-1"));
  fork1.add_signature(v0->key);
  auto fork2 = make_signed(10, Cid(), {});
  fork2.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork-2"));
  fork2.add_signature(v0->key);

  User& reporter = world.user("reporter");
  ASSERT_TRUE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                         encode(core::FraudProof{honest, fork1}),
                         TokenAmount())
                  .ok());
  const auto second =
      world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                 encode(core::FraudProof{honest, fork2}), TokenAmount());
  EXPECT_FALSE(second.ok());
  const auto sca_st = world.sca_state();
  EXPECT_EQ(sca_st.slash_records.size(), 1u);
  // Only v0's 5 burned; v1's collateral share untouched.
  EXPECT_EQ(sca_st.subnets.begin()->second.collateral,
            TokenAmount::whole(10));
}

TEST_F(CheckpointFixture, LaterEpochProofAgainstRemovedValidatorConflicts) {
  auto a = make_signed(10, Cid(), {v0, v1});
  auto b = make_signed(10, Cid(), {v0, v2});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  b.signatures.clear();
  b.add_signature(v0->key);
  b.add_signature(v2->key);
  User& reporter = world.user("reporter");
  ASSERT_TRUE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                         encode(core::FraudProof{a, b}), TokenAmount())
                  .ok());

  // v0 equivocates again at a later epoch, but is already out of the SA:
  // a fresh proof must conflict, not mint a second slash record.
  auto c = make_signed(20, Cid(), {v0, v1});
  auto d = make_signed(20, Cid(), {v0, v1});
  d.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork-20"));
  d.signatures.clear();
  d.add_signature(v0->key);
  d.add_signature(v1->key);
  // Only v0 overlaps nothing... v1 signed both too; restrict overlap to v0
  // by dropping v1 from one side.
  c.signatures.clear();
  c.add_signature(v0->key);
  c.add_signature(v1->key);
  d.signatures.clear();
  d.add_signature(v0->key);
  EXPECT_FALSE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                          encode(core::FraudProof{c, d}), TokenAmount())
                   .ok());
  EXPECT_EQ(world.sca_state().slash_records.size(), 1u);
}

TEST_F(CheckpointFixture, SlashRecordCarriesOffenceDetails) {
  auto a = make_signed(10, Cid(), {v0, v1});
  auto b = make_signed(10, Cid(), {v0, v2});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  b.signatures.clear();
  b.add_signature(v0->key);
  b.add_signature(v2->key);
  User& reporter = world.user("reporter");
  ASSERT_TRUE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                         encode(core::FraudProof{a, b}), TokenAmount())
                  .ok());
  const auto sca_st = world.sca_state();
  ASSERT_EQ(sca_st.slash_records.size(), 1u);
  const auto& rec = sca_st.slash_records[0];
  EXPECT_EQ(rec.subnet, subnet);
  EXPECT_EQ(rec.epoch, 10);
  EXPECT_EQ(rec.signer, v0->key.public_key());
  EXPECT_EQ(rec.burned, TokenAmount::whole(5));
  EXPECT_TRUE(sca_st.slashed(subnet, 10, v0->key.public_key()));
  EXPECT_FALSE(sca_st.slashed(subnet, 10, v1->key.public_key()));
  EXPECT_FALSE(sca_st.slashed(subnet, 20, v0->key.public_key()));
}

TEST_F(ActorsFixture, SlashClampsSigningThresholdToSurvivors) {
  // 3-of-3 policy; slashing one signer must clamp the threshold to 2-of-2
  // (scaled to the survivor count), not leave the subnet wedged.
  User& v0 = world.user("v0");
  User& v1 = world.user("v1");
  User& v2 = world.user("v2");
  Address sa = setup_subnet(default_params(/*threshold=*/3), {&v0, &v1, &v2},
                            TokenAmount::whole(5));
  const core::SubnetId subnet = core::SubnetId::root().child(sa);

  core::SignedCheckpoint a;
  a.checkpoint.source = subnet;
  a.checkpoint.epoch = 10;
  a.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("blk@10"));
  core::SignedCheckpoint b = a;
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  a.add_signature(v0.key);
  a.add_signature(v1.key);
  b.add_signature(v0.key);
  b.add_signature(v2.key);

  User& reporter = world.user("reporter");
  ASSERT_TRUE(world.call(reporter, chain::kScaAddr, sca::kSubmitFraudProof,
                         encode(core::FraudProof{a, b}), TokenAmount())
                  .ok());
  const auto sa_st = world.sa_state(sa);
  ASSERT_EQ(sa_st.validators.size(), 2u);
  EXPECT_EQ(sa_st.params.checkpoint_policy.threshold, 2u);
  // 15 - 5 = 10 >= min_collateral: still active, and the survivors can
  // keep checkpointing under the clamped policy.
  ASSERT_EQ(world.sca_state().subnets.begin()->second.status,
            core::SubnetStatus::kActive);
  core::SignedCheckpoint next;
  next.checkpoint.source = subnet;
  next.checkpoint.epoch = 20;
  next.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("blk@20"));
  next.add_signature(v1.key);
  next.add_signature(v2.key);
  auto r = world.call(v1, sa, kSubmitCheckpoint, encode(next), TokenAmount());
  EXPECT_TRUE(r.ok()) << r.error;
}

// ----------------------------------------------------------- cross: SCA

struct CrossFixture : ActorsFixture {
  User* v0 = nullptr;
  Address sa;
  core::SubnetId child;

  void SetUp() override {
    v0 = &world.user("v0");
    sa = setup_subnet(default_params(), {v0}, TokenAmount::whole(10));
    child = core::SubnetId::root().child(sa);
  }
};

TEST_F(CrossFixture, FundCommitsTopDownWithNonceAndSupply) {
  User& alice = world.user("alice");
  actors::CrossParams p;
  p.dest = child;
  p.to = world.user("bob").addr;
  auto r = world.call(alice, chain::kScaAddr, sca::kFund, encode(p),
                      TokenAmount::whole(20));
  ASSERT_TRUE(r.ok()) << r.error;

  const auto st = world.sca_state();
  const auto& entry = st.subnets.begin()->second;
  EXPECT_EQ(entry.circulating_supply, TokenAmount::whole(20));
  EXPECT_EQ(entry.topdown_nonce, 1u);
  ASSERT_EQ(entry.topdown_queue.size(), 1u);
  EXPECT_EQ(entry.topdown_queue[0].nonce, 0u);
  EXPECT_EQ(entry.topdown_queue[0].msg.value, TokenAmount::whole(20));
  EXPECT_EQ(entry.topdown_queue[0].msg.from, alice.addr);

  // Funds are frozen in the SCA (collateral 10 + fund 20).
  EXPECT_EQ(world.balance(chain::kScaAddr), TokenAmount::whole(30));

  // Nonces increase monotonically per child.
  ASSERT_TRUE(world.call(alice, chain::kScaAddr, sca::kFund, encode(p),
                         TokenAmount::whole(1))
                  .ok());
  EXPECT_EQ(world.sca_state().subnets.begin()->second.topdown_queue[1].nonce,
            1u);
}

TEST_F(CrossFixture, FundToUnknownSubnetFails) {
  User& alice = world.user("alice");
  actors::CrossParams p;
  p.dest = core::SubnetId::root().child(Address::id(4242));
  p.to = alice.addr;
  auto r = world.call(alice, chain::kScaAddr, sca::kFund, encode(p),
                      TokenAmount::whole(1));
  EXPECT_FALSE(r.ok());
  // Failed fund must not leak value into the SCA.
  EXPECT_EQ(world.balance(chain::kScaAddr), TokenAmount::whole(10));
}

TEST_F(CrossFixture, FundToInactiveSubnetFails) {
  ASSERT_TRUE(world.call(*v0, sa, kLeave, {}, TokenAmount()).ok());
  User& alice = world.user("alice");
  actors::CrossParams p;
  p.dest = child;
  p.to = alice.addr;
  EXPECT_FALSE(world.call(alice, chain::kScaAddr, sca::kFund, encode(p),
                          TokenAmount::whole(1))
                   .ok());
}

TEST_F(CrossFixture, TopDownApplicationMintsAndOrders) {
  // Simulate the CHILD chain: its SCA applies a committed top-down msg.
  ChainWorld child_world(child);
  core::CrossMsg cross;
  cross.from_subnet = core::SubnetId::root();
  cross.to_subnet = child;
  cross.msg.from = world.user("alice").addr;
  cross.msg.to = child_world.user("bob", TokenAmount()).addr;
  cross.msg.value = TokenAmount::whole(20);
  cross.nonce = 0;

  auto r = child_world.implicit(chain::kScaAddr, sca::kApplyTopDown,
                                encode(cross), cross.msg.value);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(child_world.balance(cross.msg.to), TokenAmount::whole(20));
  EXPECT_EQ(child_world.sca_state().applied_topdown_nonce, 1u);

  // Replays and out-of-order nonces rejected.
  auto replay = child_world.implicit(chain::kScaAddr, sca::kApplyTopDown,
                                     encode(cross), cross.msg.value);
  EXPECT_FALSE(replay.ok());
}

TEST_F(CrossFixture, UsersCannotForgeImplicitMethods) {
  User& mallory = world.user("mallory");
  core::CrossMsg cross;
  cross.from_subnet = core::SubnetId::root();
  cross.to_subnet = core::SubnetId::root();
  cross.msg.to = mallory.addr;
  cross.msg.value = TokenAmount::whole(1000);
  auto r = world.call(mallory, chain::kScaAddr, sca::kApplyTopDown,
                      encode(cross), TokenAmount());
  EXPECT_EQ(r.exit, chain::ExitCode::kActorError);
}

TEST_F(CrossFixture, ReleaseBurnsAndBuffersBottomUp) {
  // Work in a CHILD chain world: release back to the root.
  ChainWorld cw(child);
  User& u = cw.user("carol");
  actors::CrossParams p;
  p.dest = core::SubnetId::root();
  p.to = world.user("alice").addr;
  auto r = cw.call(u, chain::kScaAddr, sca::kRelease, encode(p),
                   TokenAmount::whole(3));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(cw.balance(chain::kBurnAddr), TokenAmount::whole(3));
  const auto st = cw.sca_state();
  ASSERT_EQ(st.window_msgs.size(), 1u);
  EXPECT_EQ(st.window_msgs[0].to_subnet, core::SubnetId::root());
  EXPECT_EQ(st.window_msgs[0].msg.value, TokenAmount::whole(3));
}

TEST_F(CrossFixture, CutCheckpointBundlesWindow) {
  ChainWorld cw(child);
  User& u = cw.user("carol");
  actors::CrossParams p;
  p.dest = core::SubnetId::root();
  p.to = world.user("alice").addr;
  ASSERT_TRUE(cw.call(u, chain::kScaAddr, sca::kRelease, encode(p),
                      TokenAmount::whole(3))
                  .ok());
  ASSERT_TRUE(cw.call(u, chain::kScaAddr, sca::kRelease, encode(p),
                      TokenAmount::whole(4))
                  .ok());

  actors::CutParams cut;
  cut.epoch = 10;
  cut.proof = Cid::of(CidCodec::kBlock, to_bytes("blk10"));
  auto r = cw.implicit(chain::kScaAddr, sca::kCutCheckpoint, encode(cut),
                       TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;

  const auto st = cw.sca_state();
  ASSERT_TRUE(st.pending_checkpoint.has_value());
  const auto& cp = *st.pending_checkpoint;
  EXPECT_EQ(cp.source, child);
  EXPECT_EQ(cp.epoch, 10);
  ASSERT_EQ(cp.cross_meta.size(), 1u);  // both msgs to the same dest: 1 batch
  EXPECT_EQ(cp.cross_meta[0].value, TokenAmount::whole(7));
  EXPECT_EQ(cp.cross_meta[0].msg_count, 2u);
  EXPECT_TRUE(st.window_msgs.empty());
  // Registry can serve the batch for content resolution.
  const Bytes key(cp.cross_meta[0].msgs_cid.digest().begin(),
                  cp.cross_meta[0].msgs_cid.digest().end());
  EXPECT_TRUE(st.msg_registry.contains(key));
  // A second cut at the same epoch is rejected.
  EXPECT_FALSE(cw.implicit(chain::kScaAddr, sca::kCutCheckpoint, encode(cut),
                           TokenAmount())
                   .ok());
}

TEST_F(CrossFixture, RootCannotCutCheckpoints) {
  actors::CutParams cut;
  cut.epoch = 10;
  EXPECT_FALSE(world.implicit(chain::kScaAddr, sca::kCutCheckpoint,
                              encode(cut), TokenAmount())
                   .ok());
}

TEST_F(CrossFixture, BottomUpCommitReleaseAndFirewall) {
  // Fund the child so it has circulating supply 20.
  User& alice = world.user("alice");
  actors::CrossParams fund;
  fund.dest = child;
  fund.to = alice.addr;
  ASSERT_TRUE(world.call(alice, chain::kScaAddr, sca::kFund, encode(fund),
                         TokenAmount::whole(20))
                  .ok());

  // The child checkpoints a bottom-up batch worth 8 back to root.
  core::CrossMsgBatch batch;
  core::CrossMsg m;
  m.from_subnet = child;
  m.to_subnet = core::SubnetId::root();
  m.msg.from = world.user("carol").addr;
  m.msg.to = world.user("dave", TokenAmount()).addr;
  m.msg.value = TokenAmount::whole(8);
  batch.msgs.push_back(m);

  core::SignedCheckpoint sc;
  sc.checkpoint.source = child;
  sc.checkpoint.epoch = 10;
  sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("cblk"));
  core::CrossMsgMeta meta;
  meta.from = child;
  meta.to = core::SubnetId::root();
  meta.msgs_cid = batch.cid();
  meta.msg_count = 1;
  meta.value = TokenAmount::whole(8);
  sc.checkpoint.cross_meta.push_back(meta);
  sc.add_signature(v0->key);

  ASSERT_TRUE(world.call(*v0, sa, kSubmitCheckpoint, encode(sc), {}).ok());

  auto st = world.sca_state();
  EXPECT_EQ(st.subnets.begin()->second.circulating_supply,
            TokenAmount::whole(12));  // 20 - 8
  ASSERT_EQ(st.pending_bottomup.size(), 1u);
  EXPECT_EQ(st.pending_bottomup[0].nonce, 0u);

  // Execute the batch (normally proposed by the cross-msg pool).
  actors::ApplyBottomUpParams apply{0, batch};
  auto r = world.implicit(chain::kScaAddr, sca::kApplyBottomUp, encode(apply),
                          TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(world.balance(m.msg.to), TokenAmount::whole(8));
  EXPECT_EQ(world.sca_state().applied_bottomup_nonce, 1u);

  // Forged batch content is rejected (CID mismatch).
  actors::ApplyBottomUpParams forged{1, batch};
  forged.batch.msgs[0].msg.value = TokenAmount::whole(800);
  EXPECT_FALSE(world.implicit(chain::kScaAddr, sca::kApplyBottomUp,
                              encode(forged), TokenAmount())
                   .ok());
}

TEST_F(CrossFixture, FirewallRejectsOverdraw) {
  // Child supply is 5; a compromised child tries to extract 50.
  User& alice = world.user("alice");
  actors::CrossParams fund;
  fund.dest = child;
  fund.to = alice.addr;
  ASSERT_TRUE(world.call(alice, chain::kScaAddr, sca::kFund, encode(fund),
                         TokenAmount::whole(5))
                  .ok());

  core::SignedCheckpoint sc;
  sc.checkpoint.source = child;
  sc.checkpoint.epoch = 10;
  sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("evil"));
  core::CrossMsgMeta meta;
  meta.from = child;
  meta.to = core::SubnetId::root();
  meta.msgs_cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("evil-batch"));
  meta.msg_count = 1;
  meta.value = TokenAmount::whole(50);  // exceeds supply!
  sc.checkpoint.cross_meta.push_back(meta);
  sc.add_signature(v0->key);

  auto r = world.call(*v0, sa, kSubmitCheckpoint, encode(sc), {});
  EXPECT_FALSE(r.ok());
  // Supply unchanged; nothing adopted.
  EXPECT_EQ(world.sca_state().subnets.begin()->second.circulating_supply,
            TokenAmount::whole(5));
  EXPECT_TRUE(world.sca_state().pending_bottomup.empty());
}

TEST_F(CrossFixture, SaveRecordsSnapshots) {
  User& u = world.user("alice");
  actors::SaveParams p{Cid::of(CidCodec::kStateRoot, to_bytes("root@5"))};
  ASSERT_TRUE(
      world.call(u, chain::kScaAddr, sca::kSave, encode(p), TokenAmount())
          .ok());
  const auto st = world.sca_state();
  ASSERT_EQ(st.snapshots.size(), 1u);
  EXPECT_EQ(st.snapshots[0].state_root, p.state_root);
}

// ------------------------------------------------------- atomic execution

struct AtomicFixture : ActorsFixture {
  User* u1 = nullptr;
  User* u2 = nullptr;
  core::SubnetId sub1;
  core::SubnetId sub2;
  std::vector<actors::AtomicParty> parties;
  std::vector<Cid> inputs;

  void SetUp() override {
    u1 = &world.user("u1");
    u2 = &world.user("u2");
    sub1 = core::SubnetId::root().child(Address::id(100));
    sub2 = core::SubnetId::root().child(Address::id(101));
    parties = {{sub1, u1->addr}, {sub2, u2->addr}};
    inputs = {Cid::of(CidCodec::kActorState, to_bytes("in1")),
              Cid::of(CidCodec::kActorState, to_bytes("in2"))};
  }

  std::uint64_t init_exec() {
    // Initiated via a cross-net message from u1's subnet (the common case:
    // parties live below the coordinator).
    core::CrossMsg cross;
    cross.from_subnet = sub1;
    cross.to_subnet = core::SubnetId::root();
    cross.msg.from = u1->addr;
    cross.msg.to = chain::kScaAddr;
    cross.msg.method = sca::kAtomicInit;
    cross.msg.params = encode(actors::AtomicInitParams{parties, inputs});
    cross.nonce = next_nonce_++;
    auto r = world.implicit(chain::kScaAddr, sca::kApplyTopDown, encode(cross),
                            TokenAmount());
    EXPECT_TRUE(r.ok()) << r.error;
    const auto st = world.sca_state();
    EXPECT_EQ(st.atomic_execs.size(), execs_seen_ + 1);
    ++execs_seen_;
    return st.atomic_execs.rbegin()->first;
  }

  chain::Receipt submit_via_cross(const core::SubnetId& sub, User& u,
                                  std::uint64_t id, const Cid& output) {
    core::CrossMsg cross;
    cross.from_subnet = sub;
    cross.to_subnet = core::SubnetId::root();
    cross.msg.from = u.addr;
    cross.msg.to = chain::kScaAddr;
    cross.msg.method = sca::kAtomicSubmit;
    cross.msg.params = encode(actors::AtomicSubmitParams{id, output});
    cross.nonce = next_nonce_++;
    return world.implicit(chain::kScaAddr, sca::kApplyTopDown, encode(cross),
                          TokenAmount());
  }

 private:
  std::uint64_t next_nonce_ = 0;
  std::size_t execs_seen_ = 0;
};

TEST_F(AtomicFixture, CommitWhenOutputsMatch) {
  // NOTE: these cross msgs arrive as *bottom-up* in reality; using the
  // top-down apply path here exercises the same deliver() logic without a
  // parent. The full bottom-up path is covered by the integration tests.
  const std::uint64_t id = init_exec();
  const Cid output = Cid::of(CidCodec::kActorState, to_bytes("out"));
  ASSERT_TRUE(submit_via_cross(sub1, *u1, id, output).ok());
  auto st = world.sca_state();
  EXPECT_EQ(st.atomic_execs.at(id).status, actors::AtomicStatus::kPending);

  ASSERT_TRUE(submit_via_cross(sub2, *u2, id, output).ok());
  st = world.sca_state();
  EXPECT_EQ(st.atomic_execs.at(id).status, actors::AtomicStatus::kCommitted);
}

TEST_F(AtomicFixture, MismatchedOutputsAbort) {
  const std::uint64_t id = init_exec();
  ASSERT_TRUE(submit_via_cross(sub1, *u1, id,
                               Cid::of(CidCodec::kActorState, to_bytes("a")))
                  .ok());
  ASSERT_TRUE(submit_via_cross(sub2, *u2, id,
                               Cid::of(CidCodec::kActorState, to_bytes("b")))
                  .ok());
  EXPECT_EQ(world.sca_state().atomic_execs.at(id).status,
            actors::AtomicStatus::kAborted);
}

TEST_F(AtomicFixture, NonPartyCannotSubmitOrAbort) {
  const std::uint64_t id = init_exec();
  User& mallory = world.user("mallory");
  auto r = submit_via_cross(sub1, mallory, id,
                            Cid::of(CidCodec::kActorState, to_bytes("x")));
  EXPECT_FALSE(r.ok());
  // Party identity includes the subnet: u1 submitting from the wrong subnet
  // is rejected too.
  EXPECT_FALSE(submit_via_cross(sub2, *u1, id,
                                Cid::of(CidCodec::kActorState, to_bytes("x")))
                   .ok());
}

TEST_F(AtomicFixture, AbortBeforeCommitWins) {
  const std::uint64_t id = init_exec();
  const Cid output = Cid::of(CidCodec::kActorState, to_bytes("out"));
  ASSERT_TRUE(submit_via_cross(sub1, *u1, id, output).ok());

  // u2 aborts instead of submitting.
  core::CrossMsg cross;
  cross.from_subnet = sub2;
  cross.to_subnet = core::SubnetId::root();
  cross.msg.from = u2->addr;
  cross.msg.to = chain::kScaAddr;
  cross.msg.method = sca::kAtomicAbort;
  cross.msg.params = encode(actors::AtomicAbortParams{id});
  cross.nonce = 2;
  ASSERT_TRUE(world
                  .implicit(chain::kScaAddr, sca::kApplyTopDown, encode(cross),
                            TokenAmount())
                  .ok());
  EXPECT_EQ(world.sca_state().atomic_execs.at(id).status,
            actors::AtomicStatus::kAborted);

  // Late submissions fail.
  EXPECT_FALSE(submit_via_cross(sub2, *u2, id, output).ok());
}

TEST_F(AtomicFixture, InitRequiresTwoPartiesAndMatchingInputs) {
  auto r1 = world.call(*u1, chain::kScaAddr, sca::kAtomicInit,
                       encode(actors::AtomicInitParams{{parties[0]}, {inputs[0]}}),
                       TokenAmount());
  EXPECT_FALSE(r1.ok());
  auto r2 = world.call(*u1, chain::kScaAddr, sca::kAtomicInit,
                       encode(actors::AtomicInitParams{parties, {inputs[0]}}),
                       TokenAmount());
  EXPECT_FALSE(r2.ok());
}

}  // namespace
}  // namespace hc::testing
