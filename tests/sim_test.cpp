// Unit tests for the discrete-event simulator: scheduler ordering and
// cancellation, RNG distribution sanity and determinism, latency models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace hc::sim {
namespace {

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, SameTimeIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedScheduling) {
  Scheduler s;
  std::vector<Time> fire_times;
  s.schedule(10, [&] {
    fire_times.push_back(s.now());
    s.schedule(5, [&] { fire_times.push_back(s.now()); });
  });
  s.run_all();
  EXPECT_EQ(fire_times, (std::vector<Time>{10, 15}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule(10, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, MassCancelCompactsHeap) {
  // Regression: cancel used to leave tombstones in the heap until their
  // deadline passed, so schedule/cancel churn (consensus timers) grew the
  // heap without bound. Lazy compaction must keep it proportional to the
  // LIVE event count.
  Scheduler s;
  const EventId keeper = s.schedule(1'000'000, [] {});
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(s.schedule(500'000 + i, [] {}));
    }
    for (const EventId id : ids) s.cancel(id);
  }
  // 100k cancelled tombstones against 1 live event: compaction must have
  // dropped (almost) all of them well before their deadlines.
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_LE(s.queue_size(), 2u);
  bool fired = false;
  s.schedule(1, [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  (void)keeper;
}

TEST(Scheduler, CancelFiredIdIsNoop) {
  Scheduler s;
  const EventId id = s.schedule(1, [] {});
  s.run_all();
  s.cancel(id);  // must not crash or affect others
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  s.schedule(10, [&] { ++count; });
  s.schedule(20, [&] { ++count; });
  s.schedule(30, [&] { ++count; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.run_until(100), 1u);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, StepReturnsFalseWhenIdle) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  bool fired = false;
  s.schedule(1, [&] { fired = true; });
  EXPECT_TRUE(s.step());
  EXPECT_TRUE(fired);
}

TEST(Scheduler, CallbackMayCancelLaterEvent) {
  Scheduler s;
  bool later_fired = false;
  const EventId later = s.schedule(100, [&] { later_fired = true; });
  s.schedule(10, [&] { s.cancel(later); });
  s.run_all();
  EXPECT_FALSE(later_fired);
}

TEST(Scheduler, ZeroDelayIsAsynchronous) {
  Scheduler s;
  bool fired = false;
  s.schedule(0, [&] { fired = true; });
  EXPECT_FALSE(fired);  // not run inline
  s.run_all();
  EXPECT_TRUE(fired);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hits[static_cast<std::size_t>(rng.uniform(8))];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);  // expected 1000 each; very generous bound
    EXPECT_LT(h, 1200);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  const double mean = sum / n;
  EXPECT_GT(mean, 45.0);
  EXPECT_LT(mean, 55.0);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(9);
  Rng b(9);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next(), fb.next());
}

// ---------------------------------------------------------------- latency

TEST(Latency, SampleWithinJitterBounds) {
  LatencyModel m(1000, 200);
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const Duration d = m.sample(0, 1, rng);
    EXPECT_GE(d, 800);
    EXPECT_LE(d, 1200);
  }
}

TEST(Latency, PairOverrideApplies) {
  LatencyModel m(1000, 0);
  m.set_pair(2, 3, 50, 0);
  Rng rng(23);
  EXPECT_EQ(m.sample(0, 1, rng), 1000);
  EXPECT_EQ(m.sample(2, 3, rng), 50);
  EXPECT_EQ(m.sample(3, 2, rng), 50);  // unordered pair
}

TEST(Latency, NeverZeroOrNegative) {
  LatencyModel m(1, 5);  // jitter bigger than base
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(m.sample(0, 1, rng), 1);
  }
}

TEST(Latency, FormatTime) {
  EXPECT_EQ(format_time(1500000), "1.500s");
  EXPECT_EQ(format_time(0), "0.000s");
}

}  // namespace
}  // namespace hc::sim
