// Unit tests for the storage module: content-addressable store integrity,
// KV store semantics.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "storage/store.hpp"

namespace hc::storage {
namespace {

TEST(ContentStore, PutGetRoundTrip) {
  ContentStore cas;
  const Bytes content = to_bytes("cross-msg batch");
  const Cid cid = cas.put(CidCodec::kCrossMsgs, content);
  EXPECT_TRUE(cas.has(cid));
  auto back = cas.get(cid);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, content);
}

TEST(ContentStore, PutIsIdempotent) {
  ContentStore cas;
  const Bytes content = to_bytes("same");
  const Cid a = cas.put(CidCodec::kRaw, content);
  const Cid b = cas.put(CidCodec::kRaw, content);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cas.size(), 1u);
  EXPECT_EQ(cas.total_bytes(), content.size());
}

TEST(ContentStore, GetMissingReturnsNullopt) {
  ContentStore cas;
  EXPECT_FALSE(cas.get(Cid::of(CidCodec::kRaw, to_bytes("ghost"))).has_value());
  EXPECT_FALSE(cas.has(Cid::of(CidCodec::kRaw, to_bytes("ghost"))));
}

TEST(ContentStore, PutVerifiedAcceptsMatchingContent) {
  ContentStore cas;
  const Bytes content = to_bytes("resolved messages");
  const Cid cid = Cid::of(CidCodec::kCrossMsgs, content);
  EXPECT_TRUE(cas.put_verified(cid, content).ok());
  EXPECT_TRUE(cas.has(cid));
}

TEST(ContentStore, PutVerifiedRejectsForgedContent) {
  // A malicious peer answering a pull request with bogus bytes must be
  // rejected: content addressing is the integrity backbone of cross-msg
  // resolution (paper §IV-C).
  ContentStore cas;
  const Cid cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("real"));
  auto status = cas.put_verified(cid, to_bytes("forged"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), Errc::kInvalidArgument);
  EXPECT_FALSE(cas.has(cid));
}

TEST(ContentStore, DistinguishesCodecs) {
  ContentStore cas;
  const Bytes content = to_bytes("payload");
  const Cid raw = cas.put(CidCodec::kRaw, content);
  const Cid chk = cas.put(CidCodec::kCheckpoint, content);
  EXPECT_NE(raw, chk);
  EXPECT_TRUE(cas.has(raw));
  EXPECT_TRUE(cas.has(chk));
}

TEST(KvStore, PutGetEraseCycle) {
  KvStore kv;
  const Bytes key = to_bytes("key");
  kv.put(key, to_bytes("v1"));
  EXPECT_TRUE(kv.has(key));
  EXPECT_EQ(*kv.get(key), to_bytes("v1"));
  kv.put(key, to_bytes("v2"));  // overwrite
  EXPECT_EQ(*kv.get(key), to_bytes("v2"));
  EXPECT_EQ(kv.size(), 1u);
  kv.erase(key);
  EXPECT_FALSE(kv.has(key));
  EXPECT_FALSE(kv.get(key).has_value());
}

TEST(KvStore, EmptyKeyAndValueAllowed) {
  KvStore kv;
  kv.put(Bytes{}, Bytes{});
  EXPECT_TRUE(kv.has(Bytes{}));
  EXPECT_EQ(kv.get(Bytes{})->size(), 0u);
}

}  // namespace
}  // namespace hc::storage
