// Unit tests for the storage module: content-addressable store integrity,
// KV store semantics, capacity-bounded eviction, and the simulated durable
// medium (CRC framing, fsync barriers, seeded disk faults, WAL records).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "storage/durable.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace hc::storage {
namespace {

TEST(ContentStore, PutGetRoundTrip) {
  ContentStore cas;
  const Bytes content = to_bytes("cross-msg batch");
  const Cid cid = cas.put(CidCodec::kCrossMsgs, content);
  EXPECT_TRUE(cas.has(cid));
  auto back = cas.get(cid);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, content);
}

TEST(ContentStore, PutIsIdempotent) {
  ContentStore cas;
  const Bytes content = to_bytes("same");
  const Cid a = cas.put(CidCodec::kRaw, content);
  const Cid b = cas.put(CidCodec::kRaw, content);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cas.size(), 1u);
  EXPECT_EQ(cas.total_bytes(), content.size());
}

TEST(ContentStore, GetMissingReturnsNullopt) {
  ContentStore cas;
  EXPECT_FALSE(cas.get(Cid::of(CidCodec::kRaw, to_bytes("ghost"))).has_value());
  EXPECT_FALSE(cas.has(Cid::of(CidCodec::kRaw, to_bytes("ghost"))));
}

TEST(ContentStore, PutVerifiedAcceptsMatchingContent) {
  ContentStore cas;
  const Bytes content = to_bytes("resolved messages");
  const Cid cid = Cid::of(CidCodec::kCrossMsgs, content);
  EXPECT_TRUE(cas.put_verified(cid, content).ok());
  EXPECT_TRUE(cas.has(cid));
}

TEST(ContentStore, SharedPutAliasesWithoutCopying) {
  // Zero-copy path: the store keeps the caller's buffer alive instead of
  // copying it, and get_shared() hands back the very same allocation.
  ContentStore cas;
  auto owner = std::make_shared<const Bytes>(to_bytes("one materialization"));
  const Cid cid = Cid::of(CidCodec::kCrossMsgs, *owner);
  EXPECT_TRUE(cas.put_verified(cid, owner).ok());
  auto shared = cas.get_shared(cid);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared.get(), owner.get());  // same buffer, not a copy
  EXPECT_EQ(cas.total_bytes(), owner->size());
  // Copy-returning get() still works against the shared resident.
  auto copy = cas.get(cid);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, *owner);
  EXPECT_EQ(cas.get_shared(Cid::of(CidCodec::kRaw, to_bytes("ghost"))),
            nullptr);
}

TEST(ContentStore, SharedReadSurvivesEviction) {
  ContentStore cas;
  common::CapacityPolicy policy;
  policy.max_items = 1;
  cas.set_policy(policy);
  const Bytes first = to_bytes("evict-me");
  const Cid cid = cas.put(CidCodec::kRaw, first);
  auto shared = cas.get_shared(cid);
  ASSERT_NE(shared, nullptr);
  (void)cas.put(CidCodec::kRaw, to_bytes("displaces"));  // evicts `first`
  EXPECT_FALSE(cas.has(cid));
  EXPECT_EQ(*shared, first);  // outstanding reader keeps the bytes alive
}

TEST(ContentStore, PutVerifiedRejectsForgedContent) {
  // A malicious peer answering a pull request with bogus bytes must be
  // rejected: content addressing is the integrity backbone of cross-msg
  // resolution (paper §IV-C).
  ContentStore cas;
  const Cid cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("real"));
  auto status = cas.put_verified(cid, to_bytes("forged"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), Errc::kInvalidArgument);
  EXPECT_FALSE(cas.has(cid));
}

TEST(ContentStore, DistinguishesCodecs) {
  ContentStore cas;
  const Bytes content = to_bytes("payload");
  const Cid raw = cas.put(CidCodec::kRaw, content);
  const Cid chk = cas.put(CidCodec::kCheckpoint, content);
  EXPECT_NE(raw, chk);
  EXPECT_TRUE(cas.has(raw));
  EXPECT_TRUE(cas.has(chk));
}

TEST(KvStore, PutGetEraseCycle) {
  KvStore kv;
  const Bytes key = to_bytes("key");
  kv.put(key, to_bytes("v1"));
  EXPECT_TRUE(kv.has(key));
  EXPECT_EQ(*kv.get(key), to_bytes("v1"));
  kv.put(key, to_bytes("v2"));  // overwrite
  EXPECT_EQ(*kv.get(key), to_bytes("v2"));
  EXPECT_EQ(kv.size(), 1u);
  kv.erase(key);
  EXPECT_FALSE(kv.has(key));
  EXPECT_FALSE(kv.get(key).has_value());
}

TEST(KvStore, EmptyKeyAndValueAllowed) {
  KvStore kv;
  kv.put(Bytes{}, Bytes{});
  EXPECT_TRUE(kv.has(Bytes{}));
  EXPECT_EQ(kv.get(Bytes{})->size(), 0u);
}

// --------------------------------------------------- capacity bounding

TEST(ContentStore, ItemCapEvictsOldestDeterministically) {
  ContentStore cas;
  cas.set_policy(common::CapacityPolicy{.max_items = 2});
  const Cid a = cas.put(CidCodec::kRaw, to_bytes("a"));
  const Cid b = cas.put(CidCodec::kRaw, to_bytes("b"));
  const Cid c = cas.put(CidCodec::kRaw, to_bytes("c"));
  EXPECT_EQ(cas.size(), 2u);
  EXPECT_FALSE(cas.has(a));  // oldest evicted
  EXPECT_TRUE(cas.has(b));
  EXPECT_TRUE(cas.has(c));
  EXPECT_EQ(cas.shed_stats().by(common::ShedReason::kEvicted), 1u);
  EXPECT_EQ(cas.shed_stats().peak_items, 2u);
}

TEST(ContentStore, ByteCapEvictsUntilFit) {
  ContentStore cas;
  cas.set_policy(common::CapacityPolicy{.max_bytes = 10});
  cas.put(CidCodec::kRaw, Bytes(4, 0x11));
  cas.put(CidCodec::kRaw, Bytes(4, 0x22));
  EXPECT_EQ(cas.total_bytes(), 8u);
  cas.put(CidCodec::kRaw, Bytes(6, 0x33));  // evicts only the oldest
  EXPECT_EQ(cas.total_bytes(), 10u);
  EXPECT_FALSE(cas.has(Cid::of(CidCodec::kRaw, Bytes(4, 0x11))));
  EXPECT_TRUE(cas.has(Cid::of(CidCodec::kRaw, Bytes(4, 0x22))));
  EXPECT_EQ(cas.shed_stats().by(common::ShedReason::kEvicted), 1u);
  EXPECT_LE(cas.shed_stats().peak_bytes, 10u);
}

TEST(ContentStore, OversizedBlobRefusedNotCached) {
  ContentStore cas;
  cas.set_policy(common::CapacityPolicy{.max_bytes = 4});
  const Bytes huge(16, 0x44);
  const Cid cid = cas.put(CidCodec::kRaw, huge);
  EXPECT_EQ(cid, Cid::of(CidCodec::kRaw, huge));  // CID still computed
  EXPECT_FALSE(cas.has(cid));
  EXPECT_EQ(cas.shed_stats().by(common::ShedReason::kByteCap), 1u);
  // put_verified still verifies integrity, just does not cache.
  EXPECT_TRUE(cas.put_verified(cid, huge).ok());
  EXPECT_FALSE(cas.has(cid));
}

TEST(ContentStore, ShrinkingPolicyTrimsResidents) {
  ContentStore cas;
  for (int i = 0; i < 8; ++i) {
    cas.put(CidCodec::kRaw, to_bytes("blob-" + std::to_string(i)));
  }
  cas.set_policy(common::CapacityPolicy{.max_items = 3});
  EXPECT_EQ(cas.size(), 3u);
  EXPECT_EQ(cas.shed_stats().by(common::ShedReason::kEvicted), 5u);
  EXPECT_TRUE(cas.has(Cid::of(CidCodec::kRaw, to_bytes("blob-7"))));
}

TEST(KvStore, ItemCapEvictsOldestSkippingErased) {
  KvStore kv;
  kv.set_policy(common::CapacityPolicy{.max_items = 2});
  kv.put(to_bytes("k1"), to_bytes("v1"));
  kv.put(to_bytes("k2"), to_bytes("v2"));
  kv.erase(to_bytes("k1"));  // leaves a stale order entry
  kv.put(to_bytes("k3"), to_bytes("v3"));
  kv.put(to_bytes("k4"), to_bytes("v4"));  // must evict k2, not trip on k1
  EXPECT_FALSE(kv.has(to_bytes("k2")));
  EXPECT_TRUE(kv.has(to_bytes("k3")));
  EXPECT_TRUE(kv.has(to_bytes("k4")));
  EXPECT_EQ(kv.shed_stats().by(common::ShedReason::kEvicted), 1u);
}

TEST(KvStore, OverwriteDoesNotDoubleCountBytes) {
  KvStore kv;
  kv.put(to_bytes("k"), Bytes(10, 1));
  EXPECT_EQ(kv.total_bytes(), 11u);
  kv.put(to_bytes("k"), Bytes(2, 1));
  EXPECT_EQ(kv.total_bytes(), 3u);
  EXPECT_EQ(kv.size(), 1u);
}

// --------------------------------------------------- durable medium

TEST(DurableLog, Crc32KnownVector) {
  // The canonical IEEE check value: crc32("123456789") = 0xcbf43926.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(DurableLog, AppendRecoverRoundTrip) {
  DurableLog log;
  log.append(to_bytes("one"));
  log.append(to_bytes(""));
  log.append(to_bytes("three"));
  log.fsync();
  DurableLog::RecoverStats stats;
  const auto records = log.recover(&stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], to_bytes("one"));
  EXPECT_EQ(records[1], to_bytes(""));
  EXPECT_EQ(records[2], to_bytes("three"));
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(stats.corrupt_records, 0u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(log.appends(), 3u);
  EXPECT_EQ(log.fsyncs(), 1u);
}

TEST(DurableLog, LoseSuffixCrashDropsUnfsyncedRecords) {
  DurableLog log;
  log.append(to_bytes("durable"));
  log.fsync();
  log.append(to_bytes("in-flight"));
  log.crash(DiskFault{.kind = DiskFault::Kind::kLoseSuffix, .seed = 7});
  DurableLog::RecoverStats stats;
  const auto records = log.recover(&stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("durable"));
  EXPECT_EQ(stats.truncated_bytes, 0u);  // clean cut at the frame boundary
}

TEST(DurableLog, TornTailDetectedAndTruncated) {
  DurableLog log;
  log.append(to_bytes("durable"));
  log.fsync();
  log.append(to_bytes("this write tears"));
  log.crash(DiskFault{.kind = DiskFault::Kind::kTornTail, .seed = 3});
  DurableLog::RecoverStats stats;
  const auto records = log.recover(&stats);
  ASSERT_EQ(records.size(), 1u);  // the torn record never surfaces
  EXPECT_EQ(records[0], to_bytes("durable"));
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST(DurableLog, BitFlipDetectedByCrc) {
  DurableLog log;
  for (int i = 0; i < 8; ++i) {
    log.append(to_bytes("record payload number " + std::to_string(i)));
  }
  log.fsync();
  const std::size_t before = log.size_bytes();
  log.crash(DiskFault{.kind = DiskFault::Kind::kBitFlip, .seed = 42});
  EXPECT_EQ(log.size_bytes(), before);  // corruption, not truncation
  DurableLog::RecoverStats stats;
  const auto records = log.recover(&stats);
  // Recovery stops at the flipped frame; everything before it is intact
  // and nothing corrupted is ever returned.
  EXPECT_LT(records.size(), 8u);
  EXPECT_GT(stats.truncated_bytes, 0u);
  EXPECT_TRUE(stats.corrupt_records > 0 || stats.torn_tail);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], to_bytes("record payload number " +
                                   std::to_string(i)));
  }
}

TEST(DurableLog, LoseDiskWipesEverything) {
  DurableLog log;
  log.append(to_bytes("gone"));
  log.fsync();
  log.crash(DiskFault{.kind = DiskFault::Kind::kLoseDisk});
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.recover().empty());
}

TEST(DurableLog, CrashIsDeterministicPerSeed) {
  auto build = [] {
    DurableLog log;
    for (int i = 0; i < 5; ++i) {
      log.append(to_bytes("payload-" + std::to_string(i)));
      if (i == 2) log.fsync();
    }
    return log;
  };
  for (const auto kind :
       {DiskFault::Kind::kTornTail, DiskFault::Kind::kBitFlip}) {
    DurableLog a = build();
    DurableLog b = build();
    a.crash(DiskFault{.kind = kind, .seed = 99});
    b.crash(DiskFault{.kind = kind, .seed = 99});
    EXPECT_EQ(a.size_bytes(), b.size_bytes());
    EXPECT_EQ(a.recover(), b.recover());
    DurableLog c = build();
    c.crash(DiskFault{.kind = kind, .seed = 100});
    // A different seed is allowed to (and here does) damage differently
    // or identically; only determinism per seed is required, so no assert.
    (void)c;
  }
}

// Property: for ANY randomized append/fsync schedule and ANY crash fault,
// recovery yields a valid prefix of what was appended — never a torn or
// reordered record — and everything behind the last fsync barrier
// survives every fault except bit-flip corruption and total disk loss.
TEST(DurableLog, PropertyAnyCrashPointRecoversValidPrefix) {
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int trial = 0; trial < 50; ++trial) {
    DurableLog log;
    std::vector<Bytes> appended;
    std::size_t synced = 0;  // records covered by the last fsync
    const int ops = 1 + static_cast<int>(next() % 24);
    for (int op = 0; op < ops; ++op) {
      if (next() % 4 == 0) {
        log.fsync();
        synced = appended.size();
      } else {
        Bytes payload(next() % 40, static_cast<std::uint8_t>(next()));
        log.append(payload);
        appended.push_back(std::move(payload));
      }
    }
    for (const auto kind :
         {DiskFault::Kind::kKeepAll, DiskFault::Kind::kLoseSuffix,
          DiskFault::Kind::kTornTail, DiskFault::Kind::kBitFlip,
          DiskFault::Kind::kLoseDisk}) {
      DurableLog crashed = log;  // crash this copy at the current point
      crashed.crash(DiskFault{.kind = kind, .seed = next()});
      const auto recovered = crashed.recover();
      ASSERT_LE(recovered.size(), appended.size());
      for (std::size_t i = 0; i < recovered.size(); ++i) {
        ASSERT_EQ(recovered[i], appended[i])
            << "fault " << to_string(kind) << " trial " << trial;
      }
      if (kind == DiskFault::Kind::kLoseSuffix ||
          kind == DiskFault::Kind::kTornTail ||
          kind == DiskFault::Kind::kKeepAll) {
        ASSERT_GE(recovered.size(), synced)
            << "fsynced record lost by " << to_string(kind);
      }
    }
  }
}

TEST(DurableStore, CrashAppliesToEveryLogDeterministically) {
  auto build = [] {
    DurableStore disk;
    disk.log("wal").append(to_bytes("wal-record"));
    disk.log("wal").fsync();
    disk.log("wal").append(to_bytes("wal-tail"));
    disk.log("aux").append(to_bytes("aux-record"));
    return disk;
  };
  DurableStore a = build();
  DurableStore b = build();
  a.crash(DiskFault{.kind = DiskFault::Kind::kTornTail, .seed = 5});
  b.crash(DiskFault{.kind = DiskFault::Kind::kTornTail, .seed = 5});
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  // The un-fsynced aux log loses its record; the wal keeps its barrier.
  EXPECT_EQ(a.log("wal").recover().size(), 1u);
  DurableStore c = build();
  c.crash(DiskFault{.kind = DiskFault::Kind::kLoseDisk});
  EXPECT_TRUE(c.empty());
}

// --------------------------------------------------- WAL record layer

TEST(Wal, RecordRoundTrip) {
  DurableLog log;
  WalRecord rec;
  rec.type = WalRecordType::kBlock;
  rec.height = 42;
  rec.payload = to_bytes("block bytes");
  rec.aux = to_bytes("proof bytes");
  wal_append(log, rec);
  WalRecord vote;
  vote.type = WalRecordType::kVoteState;
  vote.payload = to_bytes("engine state");
  wal_append(log, vote);
  log.fsync();

  DurableLog::RecoverStats stats;
  const auto records = wal_recover(log, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, WalRecordType::kBlock);
  EXPECT_EQ(records[0].height, 42u);
  EXPECT_EQ(records[0].payload, to_bytes("block bytes"));
  EXPECT_EQ(records[0].aux, to_bytes("proof bytes"));
  EXPECT_EQ(records[1].type, WalRecordType::kVoteState);
  EXPECT_EQ(stats.records, 2u);
}

TEST(Wal, UndecodableFrameTreatedAsCorruption) {
  DurableLog log;
  wal_append(log, WalRecord{.type = WalRecordType::kBlock,
                            .height = 1,
                            .payload = to_bytes("good"),
                            .aux = {}});
  log.append(to_bytes("\xff not a wal record"));  // valid frame, bad record
  wal_append(log, WalRecord{.type = WalRecordType::kBlock,
                            .height = 2,
                            .payload = to_bytes("after"),
                            .aux = {}});
  log.fsync();
  DurableLog::RecoverStats stats;
  const auto records = wal_recover(log, &stats);
  ASSERT_EQ(records.size(), 1u);  // replay stays a strict prefix
  EXPECT_EQ(records[0].height, 1u);
  EXPECT_EQ(stats.corrupt_records, 1u);
  EXPECT_GT(stats.truncated_bytes, 0u);
}

}  // namespace
}  // namespace hc::storage
