// Observability tests: histogram bucket edges, label canonicalization and
// registry aliasing, tracer span nesting and flow dedup, exporter
// well-formedness, and byte-identical exports across two same-seed runs.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Labels, CanonicalFormIsSortedByKey) {
  Labels l{{"zz", "1"}, {"aa", "2"}, {"mm", "3"}};
  EXPECT_EQ(l.canonical(), "aa=2,mm=3,zz=1");
  EXPECT_EQ(Labels{}.canonical(), "");
}

TEST(Labels, InsertionOrderDoesNotMatter) {
  Labels a{{"subnet", "/root"}, {"node", "3"}};
  Labels b{{"node", "3"}, {"subnet", "/root"}};
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(Counter, IncrementAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("tx_total", {});
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("queue", {});
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {}, {10, 20, 30});
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  h.observe(10);                      // == bound: lands in bucket 0
  h.observe(11);                      // bucket 1
  h.observe(30);                      // bucket 2
  h.observe(31);                      // overflow
  h.observe(0);                       // bucket 0
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10 + 11 + 30 + 31);
}

TEST(MetricsRegistry, SameNameAndLabelsAliasesOneInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("msgs", {{"subnet", "/root"}});
  Counter& b = reg.counter("msgs", {{"subnet", "/root"}});
  Counter& other = reg.counter("msgs", {{"subnet", "/root/f0100"}});
  a.inc();
  b.inc();
  other.inc();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(other.value(), 1u);
  const Counter* found = reg.find_counter("msgs", {{"subnet", "/root"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 2u);
  EXPECT_EQ(reg.find_counter("msgs", {{"subnet", "/nope"}}), nullptr);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtCreation) {
  MetricsRegistry reg;
  Histogram& a = reg.histogram("lat", {}, {1, 2});
  Histogram& b = reg.histogram("lat", {}, {100, 200, 300});  // ignored
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.buckets().size(), 3u);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, ScopedSpansNestAndClose) {
  Tracer t;
  std::int64_t clock = 0;
  t.set_clock([&] { return clock; });
  const std::size_t outer = t.begin("outer", "trackA");
  clock = 10;
  const std::size_t inner = t.begin("inner", "trackA");
  clock = 25;
  t.end(inner);
  clock = 40;
  t.end(outer);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[outer].start, 0);
  EXPECT_EQ(t.spans()[outer].end, 40);
  EXPECT_EQ(t.spans()[inner].start, 10);
  EXPECT_EQ(t.spans()[inner].end, 25);
}

TEST(Tracer, FlowEndsExactlyOnce) {
  Tracer t;
  std::int64_t clock = 100;
  t.set_clock([&] { return clock; });
  EXPECT_TRUE(t.flow_begin("k", "span", "track"));
  EXPECT_FALSE(t.flow_begin("k", "span", "track"));  // already open
  clock = 350;
  auto d = t.flow_end("k");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 250);
  // A second close — e.g. another replica observing the same committed
  // event — must be a no-op, and the flow must not reopen either.
  EXPECT_FALSE(t.flow_end("k").has_value());
  EXPECT_FALSE(t.flow_begin("k", "span", "track"));
  EXPECT_EQ(t.spans().size(), 1u);
}

TEST(Tracer, FlowEndPrefixClosesMatchingOpenFlows) {
  Tracer t;
  std::int64_t clock = 0;
  t.set_clock([&] { return clock; });
  t.flow_begin("buwin:/root/a:x", "w", "tr");
  t.flow_begin("buwin:/root/a:y", "w", "tr");
  t.flow_begin("buwin:/root/b:z", "w", "tr");
  clock = 7;
  t.flow_end_prefix("buwin:/root/a:");
  std::size_t closed = 0;
  for (const auto& s : t.spans()) {
    if (s.end >= 0) ++closed;
  }
  EXPECT_EQ(closed, 2u);
  EXPECT_TRUE(t.flow_open("buwin:/root/b:z"));
}

// -------------------------------------------------------------- exporters

TEST(Export, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Export, MetricsJsonShape) {
  MetricsRegistry reg;
  reg.counter("msgs_total", {{"subnet", "/root"}}).inc(3);
  reg.histogram("lat_us", {}, {10}).observe(5);
  const std::string j = metrics_to_json(reg);
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"msgs_total\""), std::string::npos);
  EXPECT_NE(j.find("\"subnet=/root\":3"), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
}

TEST(Export, PrometheusHistogramIsCumulativeWithInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_us", {{"subnet", "/root"}}, {10, 20});
  h.observe(5);
  h.observe(15);
  h.observe(99);
  const std::string p = metrics_to_prometheus(reg);
  EXPECT_NE(p.find("lat_us_bucket{subnet=\"/root\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(p.find("lat_us_bucket{subnet=\"/root\",le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(p.find("lat_us_bucket{subnet=\"/root\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(p.find("lat_us_count{subnet=\"/root\"} 3"), std::string::npos);
}

TEST(Export, PrometheusSanitizersHandleHostileNames) {
  EXPECT_EQ(prometheus_sanitize_name("lat_us"), "lat_us");  // idempotent
  EXPECT_EQ(prometheus_sanitize_name("9abc"), "_9abc");
  EXPECT_EQ(prometheus_sanitize_name("ns:lat us\n"), "ns:lat_us_");
  EXPECT_EQ(prometheus_sanitize_name(""), "_");
  EXPECT_EQ(prometheus_sanitize_label("subnet"), "subnet");
  EXPECT_EQ(prometheus_sanitize_label("sub:net"), "sub_net");  // no ':' here
  EXPECT_EQ(prometheus_sanitize_label("bad key!"), "bad_key_");
  EXPECT_EQ(prometheus_escape_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  // UTF-8 label values pass through verbatim per the exposition spec.
  EXPECT_EQ(prometheus_escape_value("/root/caf\xc3\xa9"), "/root/caf\xc3\xa9");
}

TEST(Export, PrometheusSurvivesHostileRegistryContent) {
  MetricsRegistry reg;
  reg.counter("1 bad\nname", {{"bad key!", "va\"l\\ue\nnewline"}}).inc(2);
  reg.gauge("queue depth", {}).set(7);
  reg.histogram("lat(us)", {{"sub:net", "/ro\"ot"}}, {10}).observe(5);
  const std::string p = metrics_to_prometheus(reg);
  // Family and label names are sanitized, values escaped.
  EXPECT_NE(p.find("# TYPE _1_bad_name counter"), std::string::npos);
  EXPECT_NE(p.find("_1_bad_name{bad_key_=\"va\\\"l\\\\ue\\nnewline\"} 2"),
            std::string::npos);
  EXPECT_NE(p.find("queue_depth 7"), std::string::npos);
  EXPECT_NE(p.find("lat_us__bucket{sub_net=\"/ro\\\"ot\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(p.find("lat_us__count{sub_net=\"/ro\\\"ot\"} 1"),
            std::string::npos);
  // No raw hostile bytes survive anywhere in a metric-name position:
  // every sample line's name prefix is in the Prometheus charset.
  EXPECT_EQ(p.find("1 bad"), std::string::npos);
  EXPECT_EQ(p.find("bad key!"), std::string::npos);
  EXPECT_EQ(p.find("queue depth"), std::string::npos);
  EXPECT_EQ(p.find("lat(us)"), std::string::npos);
  std::size_t pos = 0;
  while (pos < p.size()) {
    std::size_t eol = p.find('\n', pos);
    if (eol == std::string::npos) eol = p.size();
    const std::string line = p.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    EXPECT_EQ(prometheus_sanitize_name(name), name) << line;
  }
}

// Satellite: instruments updated concurrently from worker lanes must merge
// into exactly the bytes a single-threaded run would export. Counters and
// histogram buckets commute; the trace exporter canonicalizes span order.
TEST(Export, ConcurrentLaneExportsMatchSequentialByteForByte) {
  constexpr int kLanes = 4;
  constexpr int kIters = 64;
  auto record = [](Obs& o, int lane, int i) {
    const std::string lane_s = std::to_string(lane);
    // Shared instruments (real cross-lane contention)...
    o.metrics.counter("msgs_total", {}).inc();
    o.metrics.histogram("shared_lat_us", {}, {10, 100, 1000})
        .observe((lane * kIters + i) % 1500);
    // ...and per-lane labelsets racing on the registry's find-or-create.
    o.metrics.counter("lane_msgs_total", {{"lane", lane_s}}).inc();
    const std::size_t span = o.tracer.begin("work", "lane-" + lane_s);
    o.tracer.end(span);
    const std::string key = "flow/" + lane_s + "/" + std::to_string(i);
    o.tracer.flow_begin(key, "xfer", "lane-" + lane_s);
    o.tracer.flow_end(key);
  };

  Obs concurrent;
  std::vector<std::thread> lanes;
  lanes.reserve(kLanes);
  for (int lane = 0; lane < kLanes; ++lane) {
    lanes.emplace_back([&, lane] {
      for (int i = 0; i < kIters; ++i) record(concurrent, lane, i);
    });
  }
  for (auto& t : lanes) t.join();

  Obs sequential;
  for (int lane = 0; lane < kLanes; ++lane) {
    for (int i = 0; i < kIters; ++i) record(sequential, lane, i);
  }

  EXPECT_EQ(metrics_to_json(concurrent.metrics),
            metrics_to_json(sequential.metrics));
  EXPECT_EQ(metrics_to_prometheus(concurrent.metrics),
            metrics_to_prometheus(sequential.metrics));
  EXPECT_EQ(trace_to_chrome_json(concurrent.tracer),
            trace_to_chrome_json(sequential.tracer));
}

// Minimal structural check of the Chrome trace: balanced braces/brackets
// outside strings and the mandatory top-level keys. (No JSON parser in the
// test deps; chrome://tracing is the real consumer.)
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_str;
}

TEST(Export, ChromeTraceIsWellFormed) {
  Tracer t;
  std::int64_t clock = 0;
  t.set_clock([&] { return clock; });
  t.flow_begin("a", "phase.one", "subnetA");
  clock = 50;
  t.instant("tick", "subnetB");
  t.flow_end("a");
  const std::string j = trace_to_chrome_json(t);
  EXPECT_TRUE(json_balanced(j));
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(j.find("thread_name"), std::string::npos);
}

// ----------------------------------------------------- end-to-end runs

runtime::HierarchyConfig obs_config() {
  runtime::HierarchyConfig cfg;
  cfg.seed = 77;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params.name = "obs";
  cfg.root_params.consensus = core::ConsensusType::kPoaRoundRobin;
  cfg.root_params.min_validator_stake = TokenAmount::whole(5);
  cfg.root_params.min_collateral = TokenAmount::whole(10);
  cfg.root_params.checkpoint_period = 5;
  cfg.root_params.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  return cfg;
}

// One scripted scenario: spawn a child, fund it top-down, release back
// bottom-up; return the three export artifacts.
struct RunArtifacts {
  std::string metrics_json;
  std::string prom;
  std::string chrome;
  bool ok = false;
};

RunArtifacts scripted_run() {
  RunArtifacts out;
  runtime::Hierarchy h(obs_config());
  core::SubnetParams child_params = obs_config().root_params;
  child_params.name = "obs-child";
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  auto child = h.spawn_subnet(h.root(), "obs-child", child_params, 3,
                              TokenAmount::whole(5), e);
  if (!child.ok()) return out;
  auto alice = h.make_user("obs-alice", TokenAmount::whole(1000));
  if (!alice.ok()) return out;
  auto fund = h.send_cross(h.root(), alice.value(), child.value()->id,
                           alice.value().addr, TokenAmount::whole(50));
  if (!fund.ok() || !fund.value().ok()) return out;
  if (!h.run_until(
          [&] {
            return child.value()->node(0).balance(alice.value().addr) ==
                   TokenAmount::whole(50);
          },
          60 * sim::kSecond)) {
    return out;
  }
  auto release =
      h.send_cross(*child.value(), alice.value(), core::SubnetId::root(),
                   alice.value().addr, TokenAmount::whole(5));
  if (!release.ok() || !release.value().ok()) return out;
  h.run_for(10 * sim::kSecond);
  out.metrics_json = metrics_to_json(h.obs().metrics);
  out.prom = metrics_to_prometheus(h.obs().metrics);
  out.chrome = trace_to_chrome_json(h.obs().tracer);
  out.ok = true;
  return out;
}

TEST(ObsEndToEnd, CrossMsgLatencyRecordedPerSubnet) {
  RunArtifacts a = scripted_run();
  ASSERT_TRUE(a.ok);
  // The top-down fund ends at the child; the bottom-up release at the root.
  EXPECT_NE(a.metrics_json.find("cross_msg_e2e_latency_us"),
            std::string::npos);
  EXPECT_NE(a.prom.find("cross_msg_e2e_latency_us_count{subnet=\"/root\"}"),
            std::string::npos);
  EXPECT_NE(a.metrics_json.find("checkpoint_sign_latency_us"),
            std::string::npos);
  EXPECT_NE(a.metrics_json.find("node_blocks_committed_total"),
            std::string::npos);
  EXPECT_NE(a.chrome.find("crossmsg.e2e"), std::string::npos);
  EXPECT_NE(a.chrome.find("checkpoint.pipeline"), std::string::npos);
  EXPECT_TRUE(json_balanced(a.chrome));
}

TEST(ObsEndToEnd, SameSeedRunsExportIdenticalBytes) {
  RunArtifacts a = scripted_run();
  RunArtifacts b = scripted_run();
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.chrome, b.chrome);
}

}  // namespace
}  // namespace hc::obs
