// Unit tests for the chain substrate: messages, blocks, state tree,
// mempool, chain store, and the executor/VM (gas, nonces, reverts,
// internal sends, minting rules), plus the StateCommitment differential
// suite pitting the incremental Merkle commitment against a from-scratch
// rebuild (DESIGN.md §12).
#include <gtest/gtest.h>

#include <random>

#include "chain/actor.hpp"
#include "chain/block.hpp"
#include "chain/chainstore.hpp"
#include "chain/executor.hpp"
#include "chain/mempool.hpp"
#include "chain/message.hpp"
#include "chain/state.hpp"
#include "crypto/schnorr.hpp"

namespace hc::chain {
namespace {

constexpr CodeId kCounterCode = 50;
constexpr MethodNum kIncrement = 1;
constexpr MethodNum kFail = 2;
constexpr MethodNum kIncrementViaPeer = 3;
constexpr MethodNum kBurnGas = 4;
constexpr MethodNum kEmit = 5;
constexpr MethodNum kRecurse = 6;

/// Minimal stateful actor used to exercise the VM: a u64 counter.
class CounterActor final : public ActorLogic {
 public:
  Result<Bytes> invoke(Runtime& rt, MethodNum method,
                       const Bytes& params) override {
    switch (method) {
      case kIncrement: {
        HC_TRY(state, rt.get_state());
        std::uint64_t count = 0;
        if (!state.empty()) {
          Decoder d(state);
          HC_TRY(c, d.varint());
          count = c;
        }
        ++count;
        Encoder e;
        e.varint(count);
        HC_TRY_STATUS(rt.set_state(e.data()));
        Encoder ret;
        ret.varint(count);
        return std::move(ret).take();
      }
      case kFail: {
        // Mutate state, then fail: the mutation must be rolled back.
        HC_TRY_STATUS(rt.set_state(to_bytes("garbage")));
        return Error(Errc::kInvalidArgument, "intentional failure");
      }
      case kIncrementViaPeer: {
        // params = encoded peer address; forwards an increment.
        Decoder d(params);
        HC_TRY(peer, d.obj<Address>());
        return rt.send(peer, kIncrement, {}, TokenAmount());
      }
      case kBurnGas: {
        HC_TRY_STATUS(rt.charge_gas(1000000));
        return Bytes{};
      }
      case kEmit: {
        rt.emit_event("test/event", to_bytes("payload"));
        return Bytes{};
      }
      case kRecurse: {
        // Infinite self-recursion: the VM's call-depth guard must stop it.
        return rt.send(rt.self(), kRecurse, {}, TokenAmount());
      }
      default:
        return Error(Errc::kInvalidArgument, "unknown method");
    }
  }
};

struct ChainFixture : ::testing::Test {
  ActorRegistry registry;
  GasSchedule schedule;
  crypto::KeyPair alice = crypto::KeyPair::from_label("alice");
  crypto::KeyPair bob = crypto::KeyPair::from_label("bob");
  Address alice_addr = Address::key(alice.public_key().to_bytes());
  Address bob_addr = Address::key(bob.public_key().to_bytes());
  StateTree tree;
  ExecutionContext ctx;

  ChainFixture() {
    registry.install(kCounterCode, std::make_unique<CounterActor>());
    ActorEntry account;
    account.code = kCodeAccount;
    account.balance = TokenAmount::whole(100);
    tree.set(alice_addr, account);
    ActorEntry counter;
    counter.code = kCounterCode;
    tree.set(Address::id(200), counter);
    ctx.height = 5;
    ctx.miner = Address::id(300);
  }

  Executor make_executor() { return Executor(registry, schedule); }

  SignedMessage make_msg(MethodNum method, Bytes params, TokenAmount value,
                         std::uint64_t nonce, const Address& to) {
    Message m;
    m.from = alice_addr;
    m.to = to;
    m.nonce = nonce;
    m.value = value;
    m.method = method;
    m.params = std::move(params);
    m.gas_limit = 1u << 20;
    m.gas_price = TokenAmount::atto(1);
    return SignedMessage::sign(std::move(m), alice);
  }
};

// ------------------------------------------------------------ encoding

TEST(MessageCodec, RoundTrip) {
  Message m;
  m.from = Address::id(5);
  m.to = Address::id(6);
  m.nonce = 9;
  m.value = TokenAmount::whole(2);
  m.method = 3;
  m.params = to_bytes("params");
  m.gas_limit = 777;
  m.gas_price = TokenAmount::atto(42);
  auto out = decode<Message>(encode(m));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), m);
  EXPECT_EQ(out.value().cid(), m.cid());
}

TEST(MessageCodec, SignedRoundTripAndVerify) {
  const auto kp = crypto::KeyPair::from_label("signer");
  Message m;
  m.from = Address::key(kp.public_key().to_bytes());
  m.to = Address::id(7);
  auto sm = SignedMessage::sign(m, kp);
  EXPECT_TRUE(sm.verify());
  auto out = decode<SignedMessage>(encode(sm));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().verify());
}

TEST(MessageCodec, VerifyCatchesFromSpoofing) {
  const auto kp = crypto::KeyPair::from_label("signer");
  Message m;
  m.from = Address::id(123);  // not derived from the key
  auto sm = SignedMessage::sign(m, kp);
  EXPECT_FALSE(sm.verify());
}

TEST(BlockCodec, RoundTripWithBothMessageKinds) {
  const auto kp = crypto::KeyPair::from_label("k");
  Block b;
  b.header.miner = Address::id(1);
  b.header.height = 3;
  b.header.ticket = to_bytes("ticket");
  Message user;
  user.from = Address::key(kp.public_key().to_bytes());
  b.messages.push_back(SignedMessage::sign(user, kp));
  Message cross;
  cross.from = kSystemAddr;
  cross.value = TokenAmount::whole(1);
  b.cross_messages.push_back(cross);
  b.header.msgs_root = b.compute_msgs_root();
  auto out = decode<Block>(encode(b));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), b);
}

// ------------------------------------------------------------ state tree

TEST(StateTreeOps, FlushIsDeterministicAndOrderIndependent) {
  StateTree a;
  StateTree b;
  ActorEntry e1{kCodeAccount, TokenAmount::whole(1), 0, {}};
  ActorEntry e2{kCodeAccount, TokenAmount::whole(2), 0, {}};
  a.set(Address::id(1), e1);
  a.set(Address::id(2), e2);
  b.set(Address::id(2), e2);  // reversed insertion order
  b.set(Address::id(1), e1);
  EXPECT_EQ(a.flush(), b.flush());
}

TEST(StateTreeOps, FlushChangesWithState) {
  StateTree t;
  t.set(Address::id(1), ActorEntry{kCodeAccount, TokenAmount::whole(1), 0, {}});
  const Cid before = t.flush();
  t.get_or_create(Address::id(1)).balance += TokenAmount::atto(1);
  EXPECT_NE(before, t.flush());
}

TEST(StateTreeOps, SnapshotRevert) {
  StateTree t;
  t.set(Address::id(1), ActorEntry{kCodeAccount, TokenAmount::whole(5), 0, {}});
  StateTree snap = t.snapshot();
  t.get_or_create(Address::id(1)).balance = TokenAmount();
  t.set(Address::id(2), ActorEntry{});
  t.revert_to(std::move(snap));
  EXPECT_EQ(t.get(Address::id(1))->balance, TokenAmount::whole(5));
  EXPECT_FALSE(t.has(Address::id(2)));
}

TEST(StateTreeOps, TotalBalanceSums) {
  StateTree t;
  t.set(Address::id(1), ActorEntry{kCodeAccount, TokenAmount::whole(3), 0, {}});
  t.set(Address::id(2), ActorEntry{kCodeAccount, TokenAmount::whole(4), 0, {}});
  EXPECT_EQ(t.total_balance(), TokenAmount::whole(7));
}

TEST(StateTreeOps, CodecRoundTrip) {
  StateTree t;
  t.set(Address::id(1),
        ActorEntry{kCodeSca, TokenAmount::whole(9), 2, to_bytes("s")});
  auto out = decode<StateTree>(encode(t));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().flush(), t.flush());
}

// ----------------------------------------- incremental state commitment
//
// Differential suite (DESIGN.md §12): every root the incremental path
// produces must be byte-identical to a from-scratch rebuild — the seed's
// commitment algorithm, re-run with no cache anywhere.

/// From-scratch reference: encode every leaf in address order and
/// Merkle-hash the lot.
Cid reference_root(const StateTree& t) {
  std::vector<Bytes> leaves;
  for (const auto& [addr, entry] : t) {
    leaves.push_back(StateTree::leaf_bytes(addr, entry));
  }
  return Cid(CidCodec::kStateRoot, crypto::MerkleTree::root_of(leaves));
}

TokenAmount folded_total(const StateTree& t) {
  TokenAmount total;
  for (const auto& [addr, entry] : t) total += entry.balance;
  return total;
}

ActorEntry random_entry(std::mt19937& rng) {
  ActorEntry e;
  e.code = kCodeAccount;
  e.balance = TokenAmount::atto(static_cast<std::int64_t>(rng() % 1000000));
  e.nonce = rng() % 16;
  e.state = to_bytes("s" + std::to_string(rng() % 97));
  return e;
}

TEST(StateCommitment, DifferentialRandomOps) {
  std::mt19937 rng(20260807);
  StateTree t;
  for (int i = 0; i < 64; ++i) {
    t.set(Address::id(rng() % 512), random_entry(rng));
  }
  for (int step = 0; step < 200; ++step) {
    const auto op = rng() % 100;
    if (op < 35) {
      t.set(Address::id(rng() % 512), random_entry(rng));
    } else if (op < 55) {
      t.get_or_create(Address::id(rng() % 512)).balance +=
          TokenAmount::atto(static_cast<std::int64_t>(1 + rng() % 50));
    } else if (op < 70) {
      t.remove(Address::id(rng() % 512));  // may be a no-op
    } else if (op < 85) {
      // A burst of mutations rolled back through the journal must land the
      // tree exactly where it was — including when a flush() happens
      // between the mark and the revert.
      const Cid before = t.flush();
      const StateTree::JournalMark mark = t.journal_mark();
      for (int j = 0; j < 5; ++j) {
        t.set(Address::id(rng() % 512), random_entry(rng));
      }
      t.remove(Address::id(rng() % 512));
      if (rng() % 2 == 0) (void)t.flush();
      t.journal_revert(mark);
      ASSERT_EQ(t.flush(), before) << "journal revert diverged at step "
                                   << step;
    } else {
      // Deep-copy snapshot / revert (the SCA save() path).
      StateTree snap = t.snapshot();
      for (int j = 0; j < 3; ++j) {
        t.set(Address::id(rng() % 512), random_entry(rng));
      }
      t.revert_to(std::move(snap));
    }
    const Cid root = t.flush();
    ASSERT_EQ(root, reference_root(t)) << "root diverged at step " << step;
    ASSERT_EQ(t.total_balance(), folded_total(t))
        << "running total diverged at step " << step;
    if (t.actor_count() > 0) {
      const auto it =
          std::next(t.begin(), static_cast<long>(rng() % t.actor_count()));
      auto proof = t.prove(it->first);
      ASSERT_TRUE(proof.ok());
      ASSERT_TRUE(
          StateTree::verify_entry(root, it->first, it->second, proof.value()))
          << "proof failed at step " << step;
    }
  }
}

TEST(StateCommitment, CleanFlushIsACacheHit) {
  StateTree t;
  for (int i = 0; i < 32; ++i) {
    t.set(Address::id(i), ActorEntry{kCodeAccount, TokenAmount::whole(1), 0, {}});
  }
  const Cid root = t.flush();
  const auto before = t.commit_stats();
  EXPECT_EQ(t.flush(), root);
  EXPECT_EQ(t.flush(), root);
  const auto& after = t.commit_stats();
  EXPECT_EQ(after.flush_cache_hits, before.flush_cache_hits + 2);
  EXPECT_EQ(after.leaf_rehashes, before.leaf_rehashes);
  EXPECT_EQ(after.node_hashes, before.node_hashes);
}

// Acceptance criterion: flushing a tree with k dirty leaves out of N costs
// exactly k leaf rehashes and at most k*log2(N) interior-node hashes.
TEST(StateCommitment, DirtyFlushCostIsKLogN) {
  constexpr std::size_t kActors = 1024;  // log2 = 10 interior levels
  constexpr std::size_t kDirty = 8;
  StateTree t;
  for (std::size_t i = 0; i < kActors; ++i) {
    t.set(Address::id(i), ActorEntry{kCodeAccount, TokenAmount::whole(1), 0, {}});
  }
  (void)t.flush();
  const auto before = t.commit_stats();
  for (std::size_t i = 0; i < kDirty; ++i) {
    t.get_or_create(Address::id(i * 100)).balance += TokenAmount::atto(1);
  }
  EXPECT_EQ(t.dirty_count(), kDirty);
  const Cid root = t.flush();
  const auto& after = t.commit_stats();
  EXPECT_EQ(after.leaf_rehashes - before.leaf_rehashes, kDirty);
  EXPECT_LE(after.node_hashes - before.node_hashes, kDirty * 10);
  EXPECT_GT(after.node_hashes - before.node_hashes, 0u);
  EXPECT_EQ(root, reference_root(t));
}

// Membership changes rebuild the interior levels but must not re-encode
// clean leaves: inserting one actor and removing another out of N costs
// exactly one leaf rehash.
TEST(StateCommitment, MembershipChangeReusesCleanDigests) {
  StateTree t;
  for (std::size_t i = 0; i < 256; ++i) {
    t.set(Address::id(i * 2), ActorEntry{kCodeAccount, TokenAmount::whole(1), 0, {}});
  }
  (void)t.flush();
  const auto before = t.commit_stats();
  t.set(Address::id(101), ActorEntry{kCodeAccount, TokenAmount::whole(7), 0, {}});
  t.remove(Address::id(200));
  const Cid root = t.flush();
  const auto& after = t.commit_stats();
  EXPECT_EQ(after.leaf_rehashes - before.leaf_rehashes, 1u);
  EXPECT_EQ(root, reference_root(t));
}

TEST(StateCommitment, SnapshotCopyInheritsCacheWithFreshStats) {
  StateTree t;
  for (int i = 0; i < 16; ++i) {
    t.set(Address::id(i), ActorEntry{kCodeAccount, TokenAmount::whole(2), 0, {}});
  }
  const Cid root = t.flush();
  StateTree snap = t.snapshot();
  // Copies start with zeroed stats (per-block delta scraping relies on it)
  // but carry the commitment cache: their first clean flush is a hit.
  EXPECT_EQ(snap.commit_stats().flushes, 0u);
  EXPECT_EQ(snap.flush(), root);
  EXPECT_EQ(snap.commit_stats().flush_cache_hits, 1u);
  EXPECT_EQ(snap.commit_stats().leaf_rehashes, 0u);
  EXPECT_EQ(snap.journal_depth(), 0u);
}

TEST(StateCommitment, ProveReusesCachedTree) {
  StateTree t;
  for (int i = 0; i < 33; ++i) {  // odd count: exercises promoted nodes
    t.set(Address::id(i), ActorEntry{kCodeAccount, TokenAmount::whole(1),
                                     static_cast<std::uint64_t>(i), {}});
  }
  const Cid root = t.flush();
  const auto before = t.commit_stats();
  for (int i = 0; i < 33; ++i) {
    auto proof = t.prove(Address::id(i));
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(StateTree::verify_entry(root, Address::id(i),
                                        *t.get(Address::id(i)), proof.value()));
  }
  // Proving from a clean tree does no hashing beyond the cached levels.
  EXPECT_EQ(t.commit_stats().leaf_rehashes, before.leaf_rehashes);
  EXPECT_EQ(t.commit_stats().node_hashes, before.node_hashes);
  EXPECT_FALSE(t.prove(Address::id(999)).ok());
}

TEST(StateCommitment, NestedJournalMarksRevertIndependently) {
  StateTree t;
  t.set(Address::id(1), ActorEntry{kCodeAccount, TokenAmount::whole(5), 0, {}});
  t.journal_reset();
  const Cid base = t.flush();

  const auto outer = t.journal_mark();
  t.get_or_create(Address::id(1)).balance = TokenAmount::whole(6);
  const auto inner = t.journal_mark();
  t.set(Address::id(2), ActorEntry{kCodeAccount, TokenAmount::whole(1), 0, {}});
  t.journal_revert(inner);  // inner send failed
  EXPECT_FALSE(t.has(Address::id(2)));
  EXPECT_EQ(t.get(Address::id(1))->balance, TokenAmount::whole(6));
  t.journal_revert(outer);  // outer message failed too
  EXPECT_EQ(t.get(Address::id(1))->balance, TokenAmount::whole(5));
  EXPECT_EQ(t.flush(), base);
  EXPECT_GE(t.commit_stats().journal_reverts, 2u);
}

// ------------------------------------------------------------ executor

TEST_F(ChainFixture, BareTransferMovesValue) {
  auto exec = make_executor();
  auto sm = make_msg(0, {}, TokenAmount::whole(10), 0, bob_addr);
  Receipt r = exec.apply(tree, sm, ctx);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(tree.get(bob_addr)->balance, TokenAmount::whole(10));
  EXPECT_EQ(tree.get(bob_addr)->code, kCodeAccount);  // auto-created
  EXPECT_GT(r.gas_used, 0u);
}

TEST_F(ChainFixture, FeesFlowToMiner) {
  auto exec = make_executor();
  const TokenAmount before = tree.get(alice_addr)->balance;
  auto sm = make_msg(0, {}, TokenAmount::whole(1), 0, bob_addr);
  Receipt r = exec.apply(tree, sm, ctx);
  ASSERT_TRUE(r.ok());
  const TokenAmount fee = TokenAmount::atto(1) * r.gas_used;
  EXPECT_EQ(tree.get(ctx.miner)->balance, fee);
  EXPECT_EQ(tree.get(alice_addr)->balance,
            before - TokenAmount::whole(1) - fee);
}

TEST_F(ChainFixture, ActorMethodMutatesState) {
  auto exec = make_executor();
  auto sm = make_msg(kIncrement, {}, TokenAmount(), 0, Address::id(200));
  Receipt r = exec.apply(tree, sm, ctx);
  ASSERT_TRUE(r.ok()) << r.error;
  Decoder d(r.ret);
  EXPECT_EQ(d.varint().value(), 1u);
  // Second call increments again.
  auto sm2 = make_msg(kIncrement, {}, TokenAmount(), 1, Address::id(200));
  Receipt r2 = exec.apply(tree, sm2, ctx);
  ASSERT_TRUE(r2.ok());
  Decoder d2(r2.ret);
  EXPECT_EQ(d2.varint().value(), 2u);
}

TEST_F(ChainFixture, FailedActorCallRollsBackState) {
  auto exec = make_executor();
  auto sm = make_msg(kFail, {}, TokenAmount(), 0, Address::id(200));
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kActorError);
  EXPECT_TRUE(tree.get(Address::id(200))->state.empty());  // rolled back
  // Nonce advanced and fee charged despite the failure.
  EXPECT_EQ(tree.get(alice_addr)->nonce, 1u);
  EXPECT_GT(r.gas_used, 0u);
}

TEST_F(ChainFixture, WrongNonceRejected) {
  auto exec = make_executor();
  auto sm = make_msg(0, {}, TokenAmount::whole(1), 7, bob_addr);
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysInvalidNonce);
  EXPECT_EQ(tree.get(alice_addr)->nonce, 0u);  // unchanged
}

TEST_F(ChainFixture, UnknownSenderRejected) {
  auto exec = make_executor();
  Message m;
  m.from = bob_addr;  // bob has no account yet
  m.to = alice_addr;
  m.gas_limit = 1u << 20;
  auto sm = SignedMessage::sign(m, bob);
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysInsufficientFunds);
}

TEST_F(ChainFixture, InsufficientValueReverts) {
  auto exec = make_executor();
  auto sm = make_msg(0, {}, TokenAmount::whole(1000), 0, bob_addr);
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysInsufficientFunds);
  EXPECT_FALSE(tree.has(bob_addr));
  // Nonce still advanced (message was chargeable).
  EXPECT_EQ(tree.get(alice_addr)->nonce, 1u);
}

TEST_F(ChainFixture, OutOfGasReverts) {
  auto exec = make_executor();
  Message m;
  m.from = alice_addr;
  m.to = Address::id(200);
  m.method = kBurnGas;
  m.gas_limit = 5000;  // below kBurnGas's 1M charge
  m.gas_price = TokenAmount::atto(1);
  auto sm = SignedMessage::sign(m, alice);
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysOutOfGas);
  EXPECT_EQ(r.gas_used, 5000u);  // capped at limit
}

TEST_F(ChainFixture, TamperedSignatureRejected) {
  auto exec = make_executor();
  auto sm = make_msg(0, {}, TokenAmount::whole(1), 0, bob_addr);
  sm.message.value = TokenAmount::whole(50);  // tamper after signing
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysInvalidSignature);
}

TEST_F(ChainFixture, InternalSendReachesPeerActor) {
  auto exec = make_executor();
  // Deploy a second counter and call it through the first.
  ActorEntry counter;
  counter.code = kCounterCode;
  tree.set(Address::id(201), counter);
  Encoder params;
  params.obj(Address::id(201));
  auto sm = make_msg(kIncrementViaPeer, params.data(), TokenAmount(), 0,
                     Address::id(200));
  Receipt r = exec.apply(tree, sm, ctx);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(tree.get(Address::id(201))->state.empty());
  EXPECT_TRUE(tree.get(Address::id(200))->state.empty());
}

TEST_F(ChainFixture, RecursionBombHitsDepthGuard) {
  auto exec = make_executor();
  auto sm = make_msg(kRecurse, {}, TokenAmount(), 0, Address::id(200));
  Receipt r = exec.apply(tree, sm, ctx);
  EXPECT_FALSE(r.ok());
  // The guard fires before gas runs out here; either way the message must
  // fail cleanly and roll back.
  EXPECT_TRUE(tree.get(Address::id(200))->state.empty());
}

TEST_F(ChainFixture, EventsSurfaceInReceipt) {
  auto exec = make_executor();
  auto sm = make_msg(kEmit, {}, TokenAmount(), 0, Address::id(200));
  Receipt r = exec.apply(tree, sm, ctx);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].kind, "test/event");
}

TEST_F(ChainFixture, ImplicitMessageMintsFromSystem) {
  auto exec = make_executor();
  const TokenAmount before = tree.total_balance();
  Message mint;
  mint.from = kSystemAddr;
  mint.to = bob_addr;
  mint.value = TokenAmount::whole(7);
  Receipt r = exec.apply_implicit(tree, mint, ctx);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(tree.get(bob_addr)->balance, TokenAmount::whole(7));
  EXPECT_EQ(tree.total_balance(), before + TokenAmount::whole(7));
}

TEST_F(ChainFixture, ImplicitFromNonSystemCannotMint) {
  auto exec = make_executor();
  Message m;
  m.from = bob_addr;  // no funds
  m.to = alice_addr;
  m.value = TokenAmount::whole(1);
  Receipt r = exec.apply_implicit(tree, m, ctx);
  EXPECT_EQ(r.exit, ExitCode::kSysInsufficientFunds);
}

TEST_F(ChainFixture, ValueConservedByUserMessages) {
  auto exec = make_executor();
  const TokenAmount before = tree.total_balance();
  auto sm = make_msg(0, {}, TokenAmount::whole(3), 0, bob_addr);
  (void)exec.apply(tree, sm, ctx);
  EXPECT_EQ(tree.total_balance(), before);  // fees move, nothing minted
}

// ------------------------------------------------------------ mempool

TEST_F(ChainFixture, MempoolNonceOrderedSelection) {
  Mempool pool;
  // Insert out of order.
  ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), 2, bob_addr)).ok());
  ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), 0, bob_addr)).ok());
  ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), 1, bob_addr)).ok());
  auto picked = pool.select(10, [](const Address&) { return 0; });
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0].message.nonce, 0u);
  EXPECT_EQ(picked[1].message.nonce, 1u);
  EXPECT_EQ(picked[2].message.nonce, 2u);
}

TEST_F(ChainFixture, MempoolStopsAtNonceGap) {
  Mempool pool;
  ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), 0, bob_addr)).ok());
  ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), 2, bob_addr)).ok());
  auto picked = pool.select(10, [](const Address&) { return 0; });
  EXPECT_EQ(picked.size(), 1u);
}

TEST_F(ChainFixture, MempoolRejectsDuplicatesAndBadSignatures) {
  Mempool pool;
  auto sm = make_msg(0, {}, TokenAmount(), 0, bob_addr);
  ASSERT_TRUE(pool.add(sm).ok());
  EXPECT_EQ(pool.add(sm).error().code(), Errc::kAlreadyExists);
  auto bad = make_msg(0, {}, TokenAmount(), 1, bob_addr);
  bad.message.value = TokenAmount::whole(9);
  EXPECT_EQ(pool.add(bad).error().code(), Errc::kInvalidSignature);
}

TEST_F(ChainFixture, MempoolRemoveIncludedAndPrune) {
  Mempool pool;
  for (std::uint64_t n = 0; n < 5; ++n) {
    ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), n, bob_addr)).ok());
  }
  auto picked = pool.select(2, [](const Address&) { return 0; });
  pool.remove_included(picked);
  EXPECT_EQ(pool.size(), 3u);
  pool.prune_stale([](const Address&) { return 4; });
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(ChainFixture, MempoolSelectRespectsChainNonce) {
  Mempool pool;
  for (std::uint64_t n = 0; n < 3; ++n) {
    ASSERT_TRUE(pool.add(make_msg(0, {}, TokenAmount(), n, bob_addr)).ok());
  }
  // Chain says alice's next nonce is 1: nonce-0 message is stale.
  auto picked = pool.select(10, [](const Address&) { return 1; });
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].message.nonce, 1u);
}

// ------------------------------------------------------------ chainstore

TEST_F(ChainFixture, ChainStoreAppendsValidatedBlocks) {
  auto exec = make_executor();
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());

  StateTree next = store.state().snapshot();
  Block b1;
  b1.header.miner = ctx.miner;
  b1.header.height = 1;
  b1.header.parent = genesis.cid();
  b1.messages.push_back(make_msg(0, {}, TokenAmount::whole(1), 0, bob_addr));
  for (auto& r : exec.apply_block(next, b1)) {
    ASSERT_TRUE(r.ok()) << r.error;
  }
  b1.header.state_root = next.flush();
  b1.header.msgs_root = b1.compute_msgs_root();
  ASSERT_TRUE(store.append(b1, std::move(next)).ok());
  EXPECT_EQ(store.height(), 1);
  EXPECT_EQ(store.state().get(bob_addr)->balance, TokenAmount::whole(1));
  EXPECT_NE(store.block_by_cid(b1.cid()), nullptr);
  EXPECT_EQ(store.block_at(1)->cid(), b1.cid());
}

TEST_F(ChainFixture, ChainStoreRejectsBadLinkage) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());

  Block bad;
  bad.header.height = 1;
  bad.header.parent = Cid::of(CidCodec::kBlock, to_bytes("other chain"));
  bad.header.msgs_root = bad.compute_msgs_root();
  bad.header.state_root = tree.flush();
  EXPECT_EQ(store.append(bad, tree.snapshot()).error().code(),
            Errc::kStateConflict);

  Block wrong_height;
  wrong_height.header.height = 5;
  wrong_height.header.parent = genesis.cid();
  wrong_height.header.msgs_root = wrong_height.compute_msgs_root();
  wrong_height.header.state_root = tree.flush();
  EXPECT_FALSE(store.append(wrong_height, tree.snapshot()).ok());
}

TEST_F(ChainFixture, ChainStoreRejectsStateRootMismatch) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());
  Block b1;
  b1.header.height = 1;
  b1.header.parent = genesis.cid();
  b1.header.msgs_root = b1.compute_msgs_root();
  b1.header.state_root = Cid::of(CidCodec::kStateRoot, to_bytes("lie"));
  EXPECT_EQ(store.append(b1, tree.snapshot()).error().code(),
            Errc::kInvalidArgument);
}

// --------------------------------------------- chainstore retention (§17)

namespace {

/// Append an empty block on top of `store` (state unchanged).
Block append_empty(ChainStore& store, const Address& miner) {
  Block b;
  b.header.miner = miner;
  b.header.height = store.height() + 1;
  b.header.parent = store.head().cid();
  StateTree next = store.state().snapshot();
  b.header.state_root = next.flush();
  b.header.msgs_root = b.compute_msgs_root();
  EXPECT_TRUE(store.append(b, std::move(next)).ok());
  return b;
}

}  // namespace

TEST_F(ChainFixture, ChainStoreRetentionPrunesByItems) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());
  store.set_retention({.max_items = 4, .max_bytes = 0});

  Block b1 = append_empty(store, ctx.miner);
  for (int h = 2; h <= 10; ++h) append_empty(store, ctx.miner);

  EXPECT_EQ(store.height(), 10);
  EXPECT_EQ(store.base_height(), 7);  // window = heights 7..10
  EXPECT_EQ(store.block_at(6), nullptr);
  ASSERT_NE(store.block_at(7), nullptr);
  EXPECT_EQ(store.block_at(7)->header.height, 7);
  EXPECT_EQ(store.head().header.height, 10);
  // The cid index follows the window: pruned blocks are unreachable.
  EXPECT_EQ(store.block_by_cid(genesis.cid()), nullptr);
  EXPECT_EQ(store.block_by_cid(b1.cid()), nullptr);
  EXPECT_NE(store.block_by_cid(store.head().cid()), nullptr);
  // Live state is untouched by pruning.
  EXPECT_EQ(store.state().flush(), store.head().header.state_root);
  // Replay-to-height refuses once the prefix is gone.
  auto exec = make_executor();
  auto at = store.state_at(3, exec);
  ASSERT_FALSE(at.ok());
  EXPECT_EQ(at.error().code(), Errc::kOutOfRange);
}

TEST_F(ChainFixture, ChainStoreRetentionPrunesByBytes) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());
  const std::size_t unbounded_two = [&] {
    ChainStore probe(genesis, tree.snapshot());
    append_empty(probe, ctx.miner);
    append_empty(probe, ctx.miner);
    return probe.mem_bytes();
  }();
  // Cap below the two-block footprint: the window must slide.
  store.set_retention({.max_items = 0, .max_bytes = unbounded_two / 2});
  for (int h = 1; h <= 8; ++h) append_empty(store, ctx.miner);
  EXPECT_GT(store.base_height(), 0);
  EXPECT_EQ(store.head().header.height, 8);
  EXPECT_LE(store.mem_bytes(), unbounded_two);
}

TEST_F(ChainFixture, ChainStoreRetentionKeepsHeadWhenCapTiny) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore store(genesis, tree.snapshot());
  store.set_retention({.max_items = 1, .max_bytes = 1});
  for (int h = 1; h <= 3; ++h) append_empty(store, ctx.miner);
  // Even an impossible cap never drops the head block.
  EXPECT_EQ(store.head().header.height, 3);
  EXPECT_EQ(store.base_height(), 3);
  EXPECT_NE(store.block_at(3), nullptr);
}

TEST_F(ChainFixture, ChainStoreMemBytesTracksWindow) {
  Block genesis = ChainStore::make_genesis(tree, 0);
  ChainStore unbounded(genesis, tree.snapshot());
  ChainStore bounded(genesis, tree.snapshot());
  bounded.set_retention({.max_items = 2, .max_bytes = 0});
  for (int h = 1; h <= 20; ++h) {
    Block b = append_empty(unbounded, ctx.miner);
    StateTree next = bounded.state().snapshot();
    (void)next.flush();
    ASSERT_TRUE(bounded.append(b, std::move(next)).ok());
  }
  // Same chain, bounded window: strictly smaller deterministic footprint.
  EXPECT_LT(bounded.mem_bytes(), unbounded.mem_bytes());
  // Unbounded store retains full history and replays fine.
  auto exec = make_executor();
  EXPECT_TRUE(unbounded.state_at(10, exec).ok());
}

}  // namespace
}  // namespace hc::chain
