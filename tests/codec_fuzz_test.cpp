// Codec fuzzing: every decoder that consumes network bytes must reject
// arbitrary garbage gracefully (error, never crash/UB) and must round-trip
// randomized valid structures exactly.
#include <gtest/gtest.h>

#include "actors/sa_state.hpp"
#include "actors/sca_actor.hpp"
#include "actors/sca_state.hpp"
#include "consensus/wire.hpp"
#include "core/checkpoint.hpp"
#include "core/crossmsg.hpp"
#include "runtime/resolution.hpp"
#include "sim/rng.hpp"

namespace hc {
namespace {

Bytes random_blob(sim::Rng& rng, std::size_t max_len) {
  Bytes out(rng.uniform(max_len) + 1);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

template <typename T>
void fuzz_decoder(const char* name, int rounds = 300) {
  sim::Rng rng(std::hash<std::string>{}(name));
  int accepted = 0;
  for (int i = 0; i < rounds; ++i) {
    const Bytes blob = random_blob(rng, 256);
    auto result = decode<T>(blob);
    if (result.ok()) ++accepted;  // extremely unlikely but legal
  }
  // Random bytes must essentially never parse as complex structures.
  EXPECT_LE(accepted, rounds / 10) << name;
}

TEST(CodecFuzz, GarbageNeverCrashesDecoders) {
  fuzz_decoder<chain::Message>("Message");
  fuzz_decoder<chain::SignedMessage>("SignedMessage");
  fuzz_decoder<chain::Block>("Block");
  fuzz_decoder<chain::BlockHeader>("BlockHeader");
  fuzz_decoder<chain::StateTree>("StateTree");
  fuzz_decoder<core::SubnetId>("SubnetId");
  fuzz_decoder<core::CrossMsg>("CrossMsg");
  fuzz_decoder<core::CrossMsgMeta>("CrossMsgMeta");
  fuzz_decoder<core::Checkpoint>("Checkpoint");
  fuzz_decoder<core::SignedCheckpoint>("SignedCheckpoint");
  fuzz_decoder<core::FraudProof>("FraudProof");
  fuzz_decoder<actors::ScaState>("ScaState");
  fuzz_decoder<actors::SaState>("SaState");
  fuzz_decoder<actors::RecoverParams>("RecoverParams");
  fuzz_decoder<consensus::WireMsg>("WireMsg");
  fuzz_decoder<consensus::QuorumCert>("QuorumCert");
  fuzz_decoder<runtime::ResolutionMsg>("ResolutionMsg");
  fuzz_decoder<runtime::SigShare>("SigShare");
}

TEST(CodecFuzz, TruncationsNeverCrashDecoders) {
  // Take a VALID encoded structure and decode every truncated prefix.
  core::SignedCheckpoint sc;
  sc.checkpoint.source = core::SubnetId::root().child(Address::id(100));
  sc.checkpoint.epoch = 42;
  sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("b"));
  core::CrossMsgMeta meta;
  meta.from = sc.checkpoint.source;
  meta.to = core::SubnetId::root();
  meta.msgs_cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("m"));
  meta.value = TokenAmount::whole(3);
  sc.checkpoint.cross_meta.push_back(meta);
  sc.add_signature(crypto::KeyPair::from_label("fuzz"));
  const Bytes full = encode(sc);

  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes prefix(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode<core::SignedCheckpoint>(prefix).ok()) << len;
  }
  EXPECT_TRUE(decode<core::SignedCheckpoint>(full).ok());
}

TEST(CodecFuzz, BitflipsAreDetectedOrDecodeDifferently) {
  // A bitflip either fails to decode or decodes to a DIFFERENT value; it
  // must never silently decode back to the original.
  core::CrossMsg m;
  m.from_subnet = core::SubnetId::root().child(Address::id(100));
  m.to_subnet = core::SubnetId::root();
  m.msg.from = Address::id(7);
  m.msg.to = Address::id(8);
  m.msg.value = TokenAmount::whole(5);
  m.nonce = 9;
  const Bytes full = encode(m);

  sim::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Bytes mutated = full;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    auto out = decode<core::CrossMsg>(mutated);
    if (out.ok()) {
      EXPECT_FALSE(out.value() == m);
    }
  }
}

/// Randomized round-trip: build a random ScaState and check exact codec
/// round-trip (the SCA state is the most complex structure in the system).
TEST(CodecFuzz, RandomizedScaStateRoundTrips) {
  sim::Rng rng(4242);
  for (int round = 0; round < 25; ++round) {
    actors::ScaState s;
    s.self = core::SubnetId::root().child(Address::id(100 + rng.uniform(5)));
    s.checkpoint_period = static_cast<std::uint32_t>(1 + rng.uniform(50));
    const int n_subnets = static_cast<int>(rng.uniform(4));
    for (int i = 0; i < n_subnets; ++i) {
      actors::SubnetEntry e;
      const Address sa = Address::id(200 + static_cast<std::uint64_t>(i));
      e.id = s.self.child(sa);
      e.sa = sa;
      e.collateral = TokenAmount::atto(static_cast<__int128>(rng.next() >> 1));
      e.circulating_supply = TokenAmount::whole(
          static_cast<std::int64_t>(rng.uniform(1000)));
      e.topdown_nonce = rng.next();
      if (rng.chance(0.5)) {
        core::CrossMsg cm;
        cm.from_subnet = s.self;
        cm.to_subnet = e.id;
        cm.msg.value = TokenAmount::whole(1);
        cm.nonce = rng.uniform(100);
        e.topdown_queue.push_back(cm);
      }
      if (rng.chance(0.5)) {
        e.recovered.push_back(Address::key(random_blob(rng, 64)));
      }
      s.subnets.emplace(sa, std::move(e));
    }
    if (rng.chance(0.5)) {
      s.msg_registry[random_blob(rng, 32)] = random_blob(rng, 64);
    }
    if (rng.chance(0.3)) {
      actors::AtomicExec exec;
      exec.id = s.next_exec_id++;
      exec.parties.push_back(actors::AtomicParty{s.self, Address::id(5)});
      exec.parties.push_back(
          actors::AtomicParty{core::SubnetId::root(), Address::id(6)});
      exec.input_cids = {Cid::of(CidCodec::kActorState, random_blob(rng, 8)),
                         Cid::of(CidCodec::kActorState, random_blob(rng, 8))};
      exec.outputs.assign(2, Cid());
      s.atomic_execs.emplace(exec.id, std::move(exec));
    }
    auto out = decode<actors::ScaState>(encode(s));
    ASSERT_TRUE(out.ok()) << round;
    EXPECT_EQ(out.value(), s) << round;
  }
}

}  // namespace
}  // namespace hc
