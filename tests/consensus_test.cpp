// Tests for the consensus engines: PoA round-robin, power lottery,
// Tendermint and RRBFT, all driven over the simulated gossip network with a
// minimal (empty-block) BlockSource.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "chain/chainstore.hpp"
#include "consensus/engine.hpp"
#include "consensus/lottery.hpp"
#include "consensus/poa.hpp"
#include "consensus/rrbft.hpp"
#include "consensus/tendermint.hpp"

namespace hc::consensus {
namespace {

/// Empty-block chain source: just grows a validated chain.
class EmptySource final : public BlockSource {
 public:
  EmptySource()
      : store_(chain::ChainStore::make_genesis(chain::StateTree{}, 0),
               chain::StateTree{}) {}

  chain::Block build_block(const Address& miner) override {
    chain::Block b;
    b.header.miner = miner;
    b.header.height = store_.height() + 1;
    b.header.parent = store_.head().cid();
    b.header.state_root = store_.state().flush();
    b.header.msgs_root = b.compute_msgs_root();
    return b;
  }

  Status validate_block(const chain::Block& block) override {
    if (block.header.parent != store_.head().cid()) {
      return Error(Errc::kStateConflict, "does not extend head");
    }
    if (block.header.state_root != store_.state().flush()) {
      return Error(Errc::kInvalidArgument, "bad state root");
    }
    return ok_status();
  }

  void commit_block(chain::Block block, Bytes proof) override {
    proofs_.push_back(std::move(proof));
    auto ok = store_.append(std::move(block), store_.state().snapshot());
    ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  }

  [[nodiscard]] chain::Epoch head_height() const override {
    return store_.height();
  }
  [[nodiscard]] Cid head_cid() const override { return store_.head().cid(); }

  [[nodiscard]] std::optional<chain::Block> block_at(
      chain::Epoch height) const override {
    const auto* b = store_.block_at(height);
    if (b == nullptr) return std::nullopt;
    return *b;
  }
  [[nodiscard]] Bytes proof_at(chain::Epoch height) const override {
    if (height < 1) return {};
    const auto idx = static_cast<std::size_t>(height - 1);  // genesis has none
    return idx < proofs_.size() ? proofs_[idx] : Bytes{};
  }

  chain::ChainStore store_;
  std::vector<Bytes> proofs_;
};

/// In-memory VoteStore double. persist() records the latest state;
/// reboot() makes it visible through recovered(), the way a real restart
/// surfaces the last fsynced WAL vote record.
class MemVoteStore final : public VoteStore {
 public:
  void persist(BytesView state) override {
    saved_ = Bytes(state.begin(), state.end());
    ++persists_;
  }
  [[nodiscard]] std::optional<Bytes> recovered() const override {
    return recovered_;
  }
  void reboot() { recovered_ = saved_; }

  Bytes saved_;
  std::optional<Bytes> recovered_;
  int persists_ = 0;
};

/// A cluster of validators running one engine type.
struct Cluster {
  sim::Scheduler sched;
  net::Network net{sched, sim::LatencyModel(5 * sim::kMillisecond,
                                            2 * sim::kMillisecond),
                   /*seed=*/7};
  std::vector<crypto::KeyPair> keys;
  ValidatorSet validators;
  std::vector<std::unique_ptr<EmptySource>> sources;
  std::vector<std::unique_ptr<MemVoteStore>> votes;
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<net::NodeId> ids;
  core::ConsensusType type_;
  bool durable_ = false;

  Cluster(core::ConsensusType type, int n,
          std::vector<std::uint64_t> powers = {}, bool durable = false)
      : type_(type), durable_(durable) {
    std::vector<Validator> members;
    for (int i = 0; i < n; ++i) {
      keys.push_back(
          crypto::KeyPair::from_label("val-" + std::to_string(i)));
      members.push_back(Validator{
          keys.back().public_key(),
          powers.empty() ? 1 : powers[static_cast<std::size_t>(i)]});
    }
    validators = ValidatorSet(members);
    for (int i = 0; i < n; ++i) {
      ids.push_back(net.add_node());
      sources.push_back(std::make_unique<EmptySource>());
      votes.push_back(std::make_unique<MemVoteStore>());
      const std::size_t self = static_cast<std::size_t>(i);
      engines.push_back(make_engine(type, make_context(self), engine_cfg()));
      net.subscribe(ids.back(), "subnet/test/consensus");
      net.set_topic_handler(ids.back(),
                            [this, self](net::NodeId from, const std::string&,
                                         const net::Envelope& payload) {
                              if (engines[self]) {
                                engines[self]->on_message(from, payload);
                              }
                            });
    }
  }

  [[nodiscard]] static EngineConfig engine_cfg() {
    EngineConfig cfg;
    cfg.block_time = 100 * sim::kMillisecond;
    cfg.timeout_base = 200 * sim::kMillisecond;
    return cfg;
  }

  [[nodiscard]] EngineContext make_context(std::size_t i) {
    EngineContext ctx;
    ctx.scheduler = &sched;
    ctx.network = &net;
    ctx.node = ids[i];
    ctx.topic = "subnet/test/consensus";
    ctx.key = keys[i];
    ctx.validators = validators;
    ctx.source = sources[i].get();
    if (durable_) ctx.votes = votes[i].get();
    ctx.rng_seed = static_cast<std::uint64_t>(i);
    return ctx;
  }

  /// Crash validator i: silence its endpoint and destroy the engine —
  /// every in-memory round, lock and timer dies with it.
  void crash(std::size_t i) {
    engines[i]->stop();
    engines[i].reset();
    net.set_node_down(ids[i], true);
  }

  /// Restart validator i from its vote store: a fresh engine whose
  /// recovered() yields what the pre-crash self last persisted.
  void restart(std::size_t i) {
    votes[i]->reboot();
    net.set_node_down(ids[i], false);
    engines[i] = make_engine(type_, make_context(i), engine_cfg());
    engines[i]->start();
  }

  void start_all() {
    for (auto& e : engines) e->start();
  }

  [[nodiscard]] chain::Epoch min_height() const {
    chain::Epoch h = sources[0]->head_height();
    for (const auto& s : sources) h = std::min(h, s->head_height());
    return h;
  }

  /// All nodes at height >= h agree on the block CIDs up to h.
  [[nodiscard]] bool converged_to(chain::Epoch h) const {
    for (chain::Epoch e = 1; e <= h; ++e) {
      const auto* first = sources[0]->store_.block_at(e);
      if (first == nullptr) return false;
      for (const auto& s : sources) {
        const auto* b = s->store_.block_at(e);
        if (b == nullptr || b->cid() != first->cid()) return false;
      }
    }
    return true;
  }
};

class EngineSweep : public ::testing::TestWithParam<core::ConsensusType> {};

TEST_P(EngineSweep, ChainGrowsAndConverges) {
  Cluster c(GetParam(), 4);
  c.start_all();
  c.sched.run_until(10 * sim::kSecond);
  EXPECT_GE(c.min_height(), 10) << consensus_name(GetParam());
  EXPECT_TRUE(c.converged_to(c.min_height()));
}

TEST_P(EngineSweep, SingleValidatorProgresses) {
  Cluster c(GetParam(), 1);
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  EXPECT_GE(c.min_height(), 5);
}

TEST_P(EngineSweep, DeterministicAcrossRuns) {
  std::vector<Cid> heads;
  for (int run = 0; run < 2; ++run) {
    Cluster c(GetParam(), 4);
    c.start_all();
    c.sched.run_until(5 * sim::kSecond);
    heads.push_back(c.sources[0]->head_cid());
  }
  EXPECT_EQ(heads[0], heads[1]);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineSweep,
    ::testing::Values(core::ConsensusType::kPoaRoundRobin,
                      core::ConsensusType::kPowerLottery,
                      core::ConsensusType::kTendermint,
                      core::ConsensusType::kRoundRobinBft),
    [](const ::testing::TestParamInfo<core::ConsensusType>& info) {
      std::string name(core::consensus_name(info.param));
      std::erase(name, '-');
      return name;
    });

// ------------------------------------------------------------------- PoA

TEST(Poa, LeadersRotate) {
  Cluster c(core::ConsensusType::kPoaRoundRobin, 4);
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  std::set<Address> miners;
  for (chain::Epoch h = 1; h <= c.min_height(); ++h) {
    miners.insert(c.sources[0]->store_.block_at(h)->header.miner);
  }
  EXPECT_EQ(miners.size(), 4u);
}

TEST(Poa, StallsWhileLeaderDownAndRecovers) {
  // Validator 0 (leader of heights 4, 8, ...) is down from the start: the
  // chain must stall just before its first slot, height 4 % 4 == 0 -> the
  // first height with leader index 0 is height 4.
  Cluster c(core::ConsensusType::kPoaRoundRobin, 4);
  c.net.set_node_down(c.ids[0], true);
  for (std::size_t i = 1; i < 4; ++i) c.engines[i]->start();
  c.sched.run_until(5 * sim::kSecond);
  chain::Epoch during = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    during = std::max(during, c.sources[i]->head_height());
  }
  EXPECT_EQ(during, 3);  // heights 1..3 by leaders 1..3; height 4 stalls

  // Recovery: bring validator 0 up; it syncs nothing (PoA has no catch-up
  // in this engine for missed past blocks, but it IS the next producer).
  c.net.set_node_down(c.ids[0], false);
  c.engines[0]->start();
  c.sched.run_until(10 * sim::kSecond);
  chain::Epoch after = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    after = std::max(after, c.sources[i]->head_height());
  }
  EXPECT_GT(after, during);
}

// ----------------------------------------------------------------- lottery

TEST(Lottery, PowerWeightedSelection) {
  // One validator with 8x power must win roughly 8/11 of the draws.
  std::vector<Validator> members;
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(crypto::KeyPair::from_label("w-" + std::to_string(i)));
    members.push_back(Validator{keys.back().public_key(),
                                i == 0 ? 8ull : 1ull});
  }
  ValidatorSet set(members);
  int wins = 0;
  const int draws = 2000;
  for (int h = 0; h < draws; ++h) {
    const Cid prev = Cid::of(CidCodec::kBlock, to_bytes(std::to_string(h)));
    const auto order = PowerLottery::rank_validators(set, prev, h);
    if (order[0] == 0) ++wins;
  }
  const double share = static_cast<double>(wins) / draws;
  EXPECT_GT(share, 0.60);  // expected 8/11 ≈ 0.727
  EXPECT_LT(share, 0.85);
}

TEST(Lottery, FallbackWhenLeaderSilent) {
  Cluster c(core::ConsensusType::kPowerLottery, 4);
  // Crash one node before starting: its slots fall back to the next rank.
  c.net.set_node_down(c.ids[2], true);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 2) c.engines[i]->start();
  }
  c.sched.run_until(20 * sim::kSecond);
  chain::Epoch h = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 2) h = std::max(h, c.sources[i]->head_height());
  }
  EXPECT_GE(h, 10);  // chain keeps a cadence despite the silent miner
}

// -------------------------------------------------------------- tendermint

TEST(TendermintBft, CommitCertificatesVerify) {
  Cluster c(core::ConsensusType::kTendermint, 4);
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  ASSERT_GE(c.min_height(), 1);
  // Every committed block carries a valid 2f+1 precommit certificate.
  int checked = 0;
  for (const auto& proof : c.sources[0]->proofs_) {
    if (proof.empty()) continue;
    auto cert = decode<QuorumCert>(proof);
    ASSERT_TRUE(cert.ok());
    EXPECT_TRUE(cert.value().verify(WireKind::kPrecommit,
                                    c.validators.quorum()));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(TendermintBft, ToleratesFCrashFaults) {
  Cluster c(core::ConsensusType::kTendermint, 4);  // f = 1
  c.net.set_node_down(c.ids[3], true);
  for (std::size_t i = 0; i < 3; ++i) c.engines[i]->start();
  c.sched.run_until(20 * sim::kSecond);
  chain::Epoch h = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    h = std::max(h, c.sources[i]->head_height());
  }
  EXPECT_GE(h, 5);  // slower (round skips when node 3 proposes) but live
}

TEST(TendermintBft, HaltsWithoutQuorumThenRecovers) {
  Cluster c(core::ConsensusType::kTendermint, 4);
  c.start_all();
  c.sched.run_until(2 * sim::kSecond);
  const chain::Epoch before = c.min_height();
  ASSERT_GE(before, 1);

  // Partition 2-2: neither side has 2f+1 = 3.
  c.net.set_partition({{c.ids[0], c.ids[1]}, {c.ids[2], c.ids[3]}});
  c.sched.run_until(8 * sim::kSecond);
  chain::Epoch during = 0;
  for (const auto& s : c.sources) {
    during = std::max(during, s->head_height());
  }
  EXPECT_LE(during, before + 1);  // at most an in-flight commit

  c.net.heal_partition();
  c.sched.run_until(20 * sim::kSecond);
  EXPECT_GT(c.min_height(), during);
  EXPECT_TRUE(c.converged_to(c.min_height()));
}

TEST(TendermintBft, SafetyUnderPartition) {
  // No two nodes ever commit different blocks at the same height, even
  // across partitions and healing.
  Cluster c(core::ConsensusType::kTendermint, 7);
  c.start_all();
  c.sched.run_until(3 * sim::kSecond);
  c.net.set_partition({{c.ids[0], c.ids[1], c.ids[2]},
                       {c.ids[3], c.ids[4], c.ids[5], c.ids[6]}});
  c.sched.run_until(8 * sim::kSecond);
  c.net.heal_partition();
  c.sched.run_until(20 * sim::kSecond);
  EXPECT_TRUE(c.converged_to(c.min_height()));
  EXPECT_GE(c.min_height(), 3);
}

// ------------------------------------------------------------------ rrbft

TEST(Rrbft, BackupLeaderTakesOver) {
  Cluster c(core::ConsensusType::kRoundRobinBft, 4);
  c.net.set_node_down(c.ids[1], true);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 1) c.engines[i]->start();
  }
  c.sched.run_until(20 * sim::kSecond);
  chain::Epoch h = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 1) h = std::max(h, c.sources[i]->head_height());
  }
  EXPECT_GE(h, 5);
}

TEST(Rrbft, ProofsAreQuorumCerts) {
  Cluster c(core::ConsensusType::kRoundRobinBft, 4);
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  ASSERT_GE(c.min_height(), 1);
  int checked = 0;
  for (const auto& proof : c.sources[0]->proofs_) {
    if (proof.empty()) continue;
    auto cert = decode<QuorumCert>(proof);
    ASSERT_TRUE(cert.ok());
    EXPECT_TRUE(cert.value().verify(WireKind::kAck, c.validators.quorum()));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// ----------------------------------------------- durable vote state (§15)

TEST(VoteRestore, PoaNeverReproducesARestoredHeight) {
  // A single validator leads every height. With a restored production
  // height of 5 and an empty chain (lazy block fsync lost the tail, the
  // always-fsynced vote record survived), it must stay silent: producing
  // heights 1..5 again could conflict with blocks only peers still hold.
  Cluster c(core::ConsensusType::kPoaRoundRobin, 1, {}, /*durable=*/true);
  c.votes[0]->recovered_ = encode(PoaVoteState{5});
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  EXPECT_EQ(c.sources[0]->head_height(), 0);
}

TEST(VoteRestore, LotteryNeverReproposesARestoredHeight) {
  Cluster c(core::ConsensusType::kPowerLottery, 1, {}, /*durable=*/true);
  c.votes[0]->recovered_ = encode(LotteryVoteState{5});
  c.start_all();
  c.sched.run_until(5 * sim::kSecond);
  EXPECT_EQ(c.sources[0]->head_height(), 0);
}

TEST(VoteRestore, PoaPersistsBeforeProducing) {
  Cluster c(core::ConsensusType::kPoaRoundRobin, 4, {}, /*durable=*/true);
  c.start_all();
  c.sched.run_until(3 * sim::kSecond);
  ASSERT_GE(c.min_height(), 4);
  // Every validator produced at least once, and wrote ahead each time.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(c.votes[i]->persists_, 0) << "validator " << i;
    auto st = decode<PoaVoteState>(c.votes[i]->saved_);
    ASSERT_TRUE(st.ok());
    EXPECT_GT(st.value().last_produced, 0u);
  }
}

TEST(VoteRestore, TendermintQuorumCrashRestartResumes) {
  // Crash TWO of four validators (no quorum survives, the chain halts) and
  // restart both from their vote stores. Progress after the restart proves
  // the recovered validators rejoined; convergence proves the restored
  // locks kept them from contradicting any pre-crash precommit.
  Cluster c(core::ConsensusType::kTendermint, 4, {}, /*durable=*/true);
  c.start_all();
  c.sched.run_until(3 * sim::kSecond);
  ASSERT_GE(c.min_height(), 1);
  EXPECT_GT(c.votes[2]->persists_, 0);
  EXPECT_GT(c.votes[3]->persists_, 0);
  c.crash(2);
  c.crash(3);
  c.sched.run_until(8 * sim::kSecond);
  chain::Epoch during = 0;
  for (const auto& s : c.sources) {
    during = std::max(during, s->head_height());
  }

  c.restart(2);
  c.restart(3);
  c.sched.run_until(40 * sim::kSecond);
  chain::Epoch after = 0;
  for (const auto& s : c.sources) {
    after = std::max(after, s->head_height());
  }
  EXPECT_GT(after, during);
  EXPECT_TRUE(c.converged_to(c.min_height()));
}

TEST(VoteRestore, RrbftQuorumCrashRestartResumes) {
  Cluster c(core::ConsensusType::kRoundRobinBft, 4, {}, /*durable=*/true);
  c.start_all();
  c.sched.run_until(3 * sim::kSecond);
  ASSERT_GE(c.min_height(), 1);
  c.crash(1);
  c.crash(2);
  c.sched.run_until(8 * sim::kSecond);
  chain::Epoch during = 0;
  for (const auto& s : c.sources) {
    during = std::max(during, s->head_height());
  }

  c.restart(1);
  c.restart(2);
  c.sched.run_until(40 * sim::kSecond);
  chain::Epoch after = 0;
  for (const auto& s : c.sources) {
    after = std::max(after, s->head_height());
  }
  EXPECT_GT(after, during);
  EXPECT_TRUE(c.converged_to(c.min_height()));
}

// ----------------------------------------------------------- validator set

TEST(ValidatorSetOps, QuorumMath) {
  auto make = [](int n) {
    std::vector<Validator> ms;
    for (int i = 0; i < n; ++i) {
      ms.push_back(Validator{
          crypto::KeyPair::from_label("q" + std::to_string(i)).public_key(),
          1});
    }
    return ValidatorSet(ms);
  };
  EXPECT_EQ(make(1).quorum(), 1u);
  EXPECT_EQ(make(4).quorum(), 3u);
  EXPECT_EQ(make(7).quorum(), 5u);
  EXPECT_EQ(make(10).quorum(), 7u);
  EXPECT_EQ(make(4).max_faulty(), 1u);
  EXPECT_EQ(make(10).max_faulty(), 3u);
}

TEST(ValidatorSetOps, IndexAndPower) {
  std::vector<Validator> ms;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(Validator{
        crypto::KeyPair::from_label("p" + std::to_string(i)).public_key(),
        static_cast<std::uint64_t>(i + 1)});
  }
  ValidatorSet set(ms);
  EXPECT_EQ(set.total_power(), 6u);
  EXPECT_EQ(*set.index_of(ms[1].key), 1u);
  EXPECT_FALSE(
      set.index_of(crypto::KeyPair::from_label("zz").public_key()).has_value());
}

}  // namespace
}  // namespace hc::consensus
