// Static genesis-time tree construction + flyweight node state
// (DESIGN.md §17): a TreeSpec boots a whole hierarchy with registration
// state fabricated into each genesis — no spawn protocol. These tests
// check the fabricated state is indistinguishable from the spawned kind
// (checkpoints flow, supply is accounted), and that the memory-engine
// pieces behave: one shared genesis per subnet, viewer-gated parent
// views, bounded chain retention, deterministic mem accounting.
#include <gtest/gtest.h>

#include "actors/methods.hpp"
#include "obs/export.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams tree_params(const std::string& name) {
  core::SubnetParams p;
  p.name = name;
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

consensus::EngineConfig fast_engine() {
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  return e;
}

/// root (2 validators)
///  ├─ a (1 validator, 1 hot account) ── a0 (7 cold accounts)
///  └─ b (1 validator, 3 cold accounts)
TreeSpec small_city() {
  TreeSpec leaf;
  leaf.name = "a0";
  leaf.params = tree_params("a0");
  leaf.engine = fast_engine();
  leaf.accounts = 7;
  leaf.account_balance = TokenAmount::whole(2);

  TreeSpec a;
  a.name = "a";
  a.params = tree_params("a");
  a.engine = fast_engine();
  a.hot_accounts = 1;
  a.hot_balance = TokenAmount::whole(50);
  a.children.push_back(leaf);

  TreeSpec b;
  b.name = "b";
  b.params = tree_params("b");
  b.engine = fast_engine();
  b.accounts = 3;

  TreeSpec root;
  root.name = "root";
  root.params = tree_params("root");
  root.engine = fast_engine();
  root.n_validators = 2;
  root.children.push_back(a);
  root.children.push_back(b);
  return root;
}

HierarchyConfig tree_config() {
  HierarchyConfig cfg;
  cfg.seed = 13;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  return cfg;
}

struct StaticTreeFixture : ::testing::Test {
  Hierarchy h{tree_config(), small_city()};

  Subnet& at(std::size_t i) { return *h.subnets().at(i); }
};

TEST_F(StaticTreeFixture, BootsWholeTreePreorder) {
  ASSERT_EQ(small_city().subnet_count(), 4u);
  ASSERT_EQ(h.subnets().size(), 4u);
  // Boot order is preorder DFS: root, a, a0, b.
  EXPECT_EQ(at(0).id, core::SubnetId::root());
  EXPECT_EQ(at(1).id.to_string(), "/root/f0100");
  EXPECT_EQ(at(2).id.to_string(), "/root/f0100/f0100");
  EXPECT_EQ(at(3).id.to_string(), "/root/f0101");
  EXPECT_EQ(at(1).parent, &at(0));
  EXPECT_EQ(at(2).parent, &at(1));
  EXPECT_EQ(at(3).parent, &at(0));
  // The k-th child's SA is Address::id(100+k), as Init would have assigned.
  EXPECT_EQ(at(1).sa, Address::id(100));
  EXPECT_EQ(at(3).sa, Address::id(101));
  for (const auto& s : h.subnets()) {
    EXPECT_EQ(s->alive_count(), s->size()) << s->id.to_string();
  }
}

TEST_F(StaticTreeFixture, FabricatedRegistrationMatchesSpawnedState) {
  const auto sca = h.root().node(0).sca_state();
  ASSERT_EQ(sca.subnets.size(), 2u);
  for (const auto& [sa, entry] : sca.subnets) {
    EXPECT_TRUE(sa == Address::id(100) || sa == Address::id(101));
    EXPECT_EQ(entry.sa, sa);
    EXPECT_EQ(entry.collateral, TokenAmount::whole(10));  // 1 × stake_each
    // The child's full genesis supply is escrowed as circulating supply.
    EXPECT_GT(entry.circulating_supply, TokenAmount());
  }
  const auto sa_a = h.root().node(0).sa_state(Address::id(100));
  ASSERT_TRUE(sa_a.has_value());
  EXPECT_TRUE(sa_a->registered);
  ASSERT_EQ(sa_a->validators.size(), 1u);
  EXPECT_EQ(sa_a->total_stake, TokenAmount::whole(10));
  // Mid-tree subnet `a` carries its own SCA entry for the grandchild.
  const auto sca_a = at(1).node(0).sca_state();
  ASSERT_EQ(sca_a.subnets.size(), 1u);
  EXPECT_EQ(sca_a.subnets.begin()->first, Address::id(100));
}

TEST_F(StaticTreeFixture, AccountsArePrefunded) {
  // Cold mass on the leaves: id addresses, balances per spec.
  for (int j = 0; j < 7; ++j) {
    EXPECT_EQ(at(2).node(0).balance(Address::id(1000 + j)),
              TokenAmount::whole(2));
  }
  EXPECT_EQ(at(3).node(0).balance(Address::id(1000)), TokenAmount::whole(1));
  // Hot keyed sender on `a`, re-derivable by label (benches sign with it).
  const auto hot = crypto::KeyPair::from_label("a-hot-0");
  EXPECT_EQ(at(1).node(0).balance(Address::key(hot.public_key().to_bytes())),
            TokenAmount::whole(50));
}

TEST_F(StaticTreeFixture, CheckpointsFlowAtEveryLevel) {
  // Fabricated registration must be indistinguishable from the spawned
  // kind: periodic checkpoints anchor every child in its parent without
  // any traffic.
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        const auto sca_a = at(1).node(0).sca_state();
        if (sca.subnets.size() != 2 || sca_a.subnets.size() != 1) return false;
        for (const auto& [sa, entry] : sca.subnets) {
          if (entry.checkpoints.empty()) return false;
        }
        return !sca_a.subnets.begin()->second.checkpoints.empty();
      },
      90 * sim::kSecond))
      << "checkpoints did not reach every parent SCA";
}

TEST_F(StaticTreeFixture, GenesisIsSharedNotCopied) {
  for (const auto& s : h.subnets()) {
    ASSERT_NE(s->genesis, nullptr) << s->id.to_string();
    // One reference per validator's chain store + the subnet's own.
    EXPECT_EQ(static_cast<std::size_t>(s->genesis.use_count()), 1 + s->size())
        << s->id.to_string();
  }
}

TEST_F(StaticTreeFixture, ParentViewsAreViewerGated) {
  h.run_for(2 * sim::kSecond);
  // Leaves have no child readers: no snapshots materialized, ever.
  EXPECT_EQ(at(2).node(0).viewer_count(), 0u);
  EXPECT_EQ(at(3).node(0).viewer_count(), 0u);
  // Root carries both child validators' views (round-robin over 2 nodes),
  // and `a` carries the grandchild's.
  std::size_t root_viewers = 0;
  for (std::size_t i = 0; i < h.root().size(); ++i) {
    root_viewers += h.root().node(i).viewer_count();
  }
  EXPECT_EQ(root_viewers, 2u);
  EXPECT_EQ(at(1).node(0).viewer_count(), 1u);
}

TEST_F(StaticTreeFixture, DynamicSpawnComposesWithStaticTree) {
  // The faucet survives static construction, so the classic client API
  // still works on top: fund a user and spawn a fifth subnet dynamically.
  auto user = h.make_user("static-alice", TokenAmount::whole(100));
  ASSERT_TRUE(user.ok()) << user.error().to_string();
  auto spawned = h.spawn_subnet(h.root(), "late", tree_params("late"), 1,
                                TokenAmount::whole(10), fast_engine());
  ASSERT_TRUE(spawned.ok()) << spawned.error().to_string();
  // Fabricated deploys advanced the Init nonce: the dynamic SA lands past
  // the static range.
  EXPECT_EQ(spawned.value()->sa, Address::id(102));
  EXPECT_EQ(h.subnets().size(), 5u);
}

TEST(StaticTreeRetention, BoundedWindowAndMemGauges) {
  HierarchyConfig cfg = tree_config();
  cfg.chain_retention = {.max_items = 8, .max_bytes = 0};
  cfg.mem_metrics = true;
  TreeSpec spec = small_city();
  Hierarchy h(cfg, spec);
  ASSERT_TRUE(h.run_until(
      [&] { return h.root().node(0).chain().height() >= 20; },
      60 * sim::kSecond));
  for (const auto& s : h.subnets()) {
    for (std::size_t i = 0; i < s->size(); ++i) {
      const auto& chain = s->node(i).chain();
      if (chain.height() < 8) continue;
      EXPECT_GT(chain.base_height(), 0) << s->id.to_string();
      EXPECT_LE(chain.height() - chain.base_height() + 1, 8)
          << s->id.to_string();
      EXPECT_GT(s->node(i).mem_bytes(), 0u);
    }
  }
  // The opt-in gauges exported (height-paced refresh has fired by h=20).
  const std::string metrics = obs::metrics_to_json(h.obs().metrics);
  EXPECT_NE(metrics.find("node_mem_bytes"), std::string::npos);
  EXPECT_NE(metrics.find("node_mem_peak_bytes"), std::string::npos);
}

TEST(StaticTreeDeterminism, SameSpecSameSeedSameRoots) {
  auto roots = [] {
    Hierarchy h(tree_config(), small_city());
    h.run_for(3 * sim::kSecond);
    std::string out;
    for (const auto& s : h.subnets()) {
      out += s->id.to_string() + "@" +
             std::to_string(s->node(0).chain().height()) + "=" +
             s->node(0).chain().head().header.state_root.to_string() + "\n";
    }
    return out;
  };
  const std::string a = roots();
  const std::string b = roots();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("/root/f0100/f0100@"), std::string::npos);
}

}  // namespace
}  // namespace hc::runtime
