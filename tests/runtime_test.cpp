// Node-level runtime tests: block assembly (cross-msg gathering), implicit-
// message validation against Byzantine proposers, checkpoint duty wiring,
// and node statistics.
#include <gtest/gtest.h>

#include "actors/methods.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params(std::uint32_t period = 5) {
  core::SubnetParams p;
  p.name = "rt";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = period;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

HierarchyConfig fast_config() {
  HierarchyConfig cfg;
  cfg.seed = 11;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = subnet_params();
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  return cfg;
}

consensus::EngineConfig fast_engine() {
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  return e;
}

struct RuntimeFixture : ::testing::Test {
  Hierarchy h{fast_config()};
  Subnet* child = nullptr;
  User alice;

  void SetUp() override {
    auto c = h.spawn_subnet(h.root(), "rt-child", subnet_params(), 3,
                            TokenAmount::whole(5), fast_engine());
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    child = c.value();
    auto a = h.make_user("rt-alice", TokenAmount::whole(1000));
    ASSERT_TRUE(a.ok());
    alice = a.value();
  }

  /// Commit a top-down fund on the root WITHOUT letting the child see it
  /// applied yet (stop just after the root commit).
  void fund_child(TokenAmount amount) {
    auto r = h.send_cross(h.root(), alice, child->id, alice.addr, amount);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().error;
  }
};

// ------------------------------------------------------ block assembly

TEST_F(RuntimeFixture, BuildBlockPicksUpCommittedTopDownMsgs) {
  fund_child(TokenAmount::whole(7));
  // Build directly on a child node: its parent view already has the
  // committed msg (call() waited for root inclusion).
  chain::Block block = child->node(0).build_block(Address::id(900));
  ASSERT_GE(block.cross_messages.size(), 1u);
  bool found = false;
  for (const auto& m : block.cross_messages) {
    if (m.method != actors::sca_method::kApplyTopDown) continue;
    auto cross = decode<core::CrossMsg>(m.params);
    ASSERT_TRUE(cross.ok());
    EXPECT_EQ(cross.value().msg.value, TokenAmount::whole(7));
    EXPECT_EQ(cross.value().nonce, 0u);
    EXPECT_EQ(m.value, TokenAmount::whole(7));  // mint envelope
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RuntimeFixture, BuildBlockCutsAtPeriodBoundary) {
  // Next height multiple of 5 ⇒ the block must contain a cut.
  ASSERT_TRUE(h.run_until(
      [&] { return (child->node(0).chain().height() + 1) % 5 == 0; },
      20 * sim::kSecond));
  chain::Block block = child->node(0).build_block(Address::id(900));
  bool has_cut = false;
  for (const auto& m : block.cross_messages) {
    if (m.method == actors::sca_method::kCutCheckpoint) has_cut = true;
  }
  EXPECT_TRUE(has_cut);
}

TEST_F(RuntimeFixture, ValidateRejectsForgedTopDown) {
  fund_child(TokenAmount::whole(7));
  chain::Block block = child->node(0).build_block(Address::id(900));

  // A Byzantine proposer doubles the minted value.
  for (auto& m : block.cross_messages) {
    if (m.method != actors::sca_method::kApplyTopDown) continue;
    auto cross = decode<core::CrossMsg>(m.params).value();
    cross.msg.value = TokenAmount::whole(700);
    m.params = encode(cross);
    m.value = cross.msg.value;
  }
  // Re-seal the block so only the semantic check can catch it.
  chain::StateTree tree = child->node(0).state().snapshot();
  block.header.msgs_root = block.compute_msgs_root();
  auto status = child->node(1).validate_block(block);
  EXPECT_FALSE(status.ok());
  (void)tree;
}

TEST_F(RuntimeFixture, ValidateRejectsInventedTopDown) {
  // No committed fund at all: a proposer invents a mint from thin air.
  core::CrossMsg forged;
  forged.from_subnet = core::SubnetId::root();
  forged.to_subnet = child->id;
  forged.msg.from = alice.addr;
  forged.msg.to = alice.addr;
  forged.msg.value = TokenAmount::whole(1000);
  forged.nonce = 0;

  chain::Block block = child->node(0).build_block(Address::id(900));
  chain::Message m;
  m.from = chain::kSystemAddr;
  m.to = chain::kScaAddr;
  m.method = actors::sca_method::kApplyTopDown;
  m.params = encode(forged);
  m.value = forged.msg.value;
  block.cross_messages.push_back(std::move(m));
  block.header.msgs_root = block.compute_msgs_root();
  EXPECT_FALSE(child->node(1).validate_block(block).ok());
}

TEST_F(RuntimeFixture, ValidateRejectsNonSystemImplicitEnvelope) {
  chain::Block block = child->node(0).build_block(Address::id(900));
  chain::Message m;
  m.from = alice.addr;  // users cannot inject implicit msgs
  m.to = chain::kScaAddr;
  m.method = actors::sca_method::kApplyTopDown;
  block.cross_messages.push_back(std::move(m));
  block.header.msgs_root = block.compute_msgs_root();
  EXPECT_FALSE(child->node(1).validate_block(block).ok());
}

TEST_F(RuntimeFixture, ValidateRejectsMisplacedCut) {
  // A cut at a non-boundary height must be rejected.
  const chain::Epoch next = child->node(0).chain().height() + 1;
  if (next % 5 == 0) {
    ASSERT_TRUE(h.run_until(
        [&] { return (child->node(0).chain().height() + 1) % 5 != 0; },
        20 * sim::kSecond));
  }
  chain::Block block = child->node(0).build_block(Address::id(900));
  actors::CutParams cut;
  cut.epoch = block.header.height;
  cut.proof = block.header.parent;
  chain::Message m;
  m.from = chain::kSystemAddr;
  m.to = chain::kScaAddr;
  m.method = actors::sca_method::kCutCheckpoint;
  m.params = encode(cut);
  block.cross_messages.insert(block.cross_messages.begin(), std::move(m));
  block.header.msgs_root = block.compute_msgs_root();
  EXPECT_FALSE(child->node(1).validate_block(block).ok());
}

TEST_F(RuntimeFixture, ValidateRejectsTamperedUserMessage) {
  chain::Block block = child->node(0).build_block(Address::id(900));
  chain::Message m;
  m.from = alice.addr;
  m.to = alice.addr;
  m.gas_limit = 1 << 20;
  auto sm = chain::SignedMessage::sign(m, alice.key);
  sm.message.value = TokenAmount::whole(5);  // tamper
  block.messages.push_back(sm);
  block.header.msgs_root = block.compute_msgs_root();
  EXPECT_FALSE(child->node(1).validate_block(block).ok());
}

// -------------------------------------------------------- checkpoint duty

TEST_F(RuntimeFixture, CheckpointStatsProgress) {
  ASSERT_TRUE(h.run_until(
      [&] { return child->node(0).stats().checkpoints_cut >= 2; },
      60 * sim::kSecond));
  // Exactly one designated submitter per epoch: total submissions across
  // nodes ≈ checkpoints accepted by the SA.
  std::uint64_t submitted = 0;
  for (std::size_t i = 0; i < child->size(); ++i) {
    submitted += child->node(i).stats().checkpoints_submitted;
  }
  const auto sa = h.root().node(0).sa_state(child->sa);
  ASSERT_TRUE(sa.has_value());
  EXPECT_GE(submitted, 1u);
  // No double-submission storm: submissions can exceed accepted by at most
  // the in-flight one.
  const auto sca = h.root().node(0).sca_state();
  EXPECT_LE(submitted,
            sca.subnets.at(child->sa).checkpoints.size() + 1);
}

TEST_F(RuntimeFixture, SubmitMessageRejectsGarbageAndDuplicates) {
  chain::Message m;
  m.from = alice.addr;
  m.to = alice.addr;
  m.nonce = child->node(0).account_nonce(alice.addr) + 7;  // any
  m.gas_limit = 1 << 20;
  auto sm = chain::SignedMessage::sign(m, alice.key);
  ASSERT_TRUE(child->node(0).submit_message(sm).ok());
  EXPECT_FALSE(child->node(0).submit_message(sm).ok());  // duplicate
  sm.message.value = TokenAmount::whole(1);               // broken signature
  EXPECT_FALSE(child->node(0).submit_message(sm).ok());
}

TEST_F(RuntimeFixture, FailedExecutionsStillYieldReceipts) {
  fund_child(TokenAmount::whole(5));
  ASSERT_TRUE(h.run_until(
      [&] { return !child->node(0).balance(alice.addr).is_zero(); },
      30 * sim::kSecond));
  // A call that executes but fails (unknown SCA method): the receipt with
  // the failure must be retrievable through the usual path.
  auto r = h.call(*child, alice, chain::kScaAddr, /*method=*/9999, {},
                  TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_FALSE(r.value().ok());
  EXPECT_EQ(r.value().exit, chain::ExitCode::kActorError);
}

TEST_F(RuntimeFixture, NonValidatorNodeFollowsChain) {
  // A follower (non-validator) node attached to the subnet syncs blocks
  // committed by the validators.
  NodeConfig nc;
  nc.subnet = child->id;
  nc.params = subnet_params();
  nc.engine = fast_engine();
  nc.sa_in_parent = child->sa;
  consensus::ValidatorSet validators;  // observer: not in the set
  {
    std::vector<consensus::Validator> members;
    for (const auto& k : child->validator_keys) {
      members.push_back(consensus::Validator{k.public_key(), 1});
    }
    validators = consensus::ValidatorSet(members);
  }
  chain::StateTree genesis;  // same genesis as the child
  chain::ActorEntry init;
  init.code = chain::kCodeInit;
  init.nonce = 100;
  genesis.set(chain::kInitAddr, init);
  chain::ActorEntry sca;
  sca.code = chain::kCodeSca;
  sca.state = actors::make_sca_ctor_state(child->id, 5);
  genesis.set(chain::kScaAddr, sca);

  SubnetNode observer(
      h.scheduler(), h.network(), h.registry(), nc,
      crypto::KeyPair::from_label("observer"), validators,
      std::make_shared<const chain::StateTree>(std::move(genesis)));
  observer.attach_parent(&h.root().node(0));
  observer.start();
  // PoA gossip reaches the observer; it validates and follows.
  ASSERT_TRUE(h.run_until(
      [&] { return observer.chain().height() >= 3; }, 30 * sim::kSecond));
  EXPECT_EQ(observer.chain().block_at(2)->cid(),
            child->node(0).chain().block_at(2)->cid());
  observer.stop();
}

}  // namespace
}  // namespace hc::runtime
