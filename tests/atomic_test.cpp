// Integration tests for cross-net atomic executions (paper §IV-D, Fig. 5):
// two subnets swap application state through the root SCA as coordinator,
// with commit, explicit-abort, mismatch-abort and party-crash paths.
#include <gtest/gtest.h>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "runtime/atomic.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params() {
  core::SubnetParams p;
  p.name = "subnet";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

HierarchyConfig fast_config() {
  HierarchyConfig cfg;
  cfg.seed = 7;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = subnet_params();
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 200 * sim::kMillisecond;
  return cfg;
}

consensus::EngineConfig fast_engine() {
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  return e;
}

/// A two-subnet world with a funded user + deployed KV app + one seeded,
/// initially-unlocked key in each subnet.
struct AtomicFixture : ::testing::Test {
  Hierarchy h{fast_config()};
  Subnet* sub_a = nullptr;
  Subnet* sub_b = nullptr;
  User user_a;
  User user_b;
  Address app_a;
  Address app_b;

  void SetUp() override {
    auto a = h.spawn_subnet(h.root(), "swap-a", subnet_params(), 3,
                            TokenAmount::whole(5), fast_engine());
    ASSERT_TRUE(a.ok()) << a.error().to_string();
    sub_a = a.value();
    auto b = h.spawn_subnet(h.root(), "swap-b", subnet_params(), 3,
                            TokenAmount::whole(5), fast_engine());
    ASSERT_TRUE(b.ok()) << b.error().to_string();
    sub_b = b.value();

    auto ua = h.make_user("user-a", TokenAmount::whole(500));
    ASSERT_TRUE(ua.ok());
    user_a = ua.value();
    auto ub = h.make_user("user-b", TokenAmount::whole(500));
    ASSERT_TRUE(ub.ok());
    user_b = ub.value();

    // Fund both users inside their subnets (gas for local txs).
    ASSERT_TRUE(h.send_cross(h.root(), user_a, sub_a->id, user_a.addr,
                             TokenAmount::whole(100))
                    .ok());
    ASSERT_TRUE(h.send_cross(h.root(), user_b, sub_b->id, user_b.addr,
                             TokenAmount::whole(100))
                    .ok());
    ASSERT_TRUE(h.run_until(
        [&] {
          return !sub_a->node(0).balance(user_a.addr).is_zero() &&
                 !sub_b->node(0).balance(user_b.addr).is_zero();
        },
        60 * sim::kSecond));

    app_a = deploy_kv(*sub_a, user_a, "asset", "ownedByA");
    app_b = deploy_kv(*sub_b, user_b, "asset", "ownedByB");
    ASSERT_TRUE(app_a.valid());
    ASSERT_TRUE(app_b.valid());
  }

  Address deploy_kv(Subnet& subnet, const User& user, const std::string& key,
                    const std::string& value) {
    actors::ExecParams exec;
    exec.code = chain::kCodeKvApp;
    auto dep = h.call(subnet, user, chain::kInitAddr,
                      actors::init_method::kExec, encode(exec), TokenAmount());
    if (!dep.ok() || !dep.value().ok()) return Address();
    auto addr = decode<Address>(dep.value().ret);
    if (!addr.ok()) return Address();
    actors::KvParams put{to_bytes(key), to_bytes(value)};
    auto r = h.call(subnet, user, addr.value(), actors::kv_method::kPut,
                    encode(put), TokenAmount());
    if (!r.ok() || !r.value().ok()) return Address();
    return addr.value();
  }

  Bytes kv_get(Subnet& subnet, const User& user, const Address& app,
               const std::string& key) {
    actors::KvParams p{to_bytes(key), {}};
    auto r = h.call(subnet, user, app, actors::kv_method::kGet, encode(p),
                    TokenAmount());
    return r.ok() && r.value().ok() ? r.value().ret : Bytes{};
  }

  AtomicExecution make_swap() {
    // Swap the two asset values atomically.
    return AtomicExecution(
        h, h.root(),
        {AtomicPartySpec{sub_a, user_a, app_a, to_bytes("asset")},
         AtomicPartySpec{sub_b, user_b, app_b, to_bytes("asset")}},
        [](const std::vector<Bytes>& inputs) {
          return std::vector<Bytes>{inputs[1], inputs[0]};
        });
  }
};

TEST_F(AtomicFixture, SwapCommits) {
  AtomicExecution swap = make_swap();
  auto decision = swap.run();
  ASSERT_TRUE(decision.ok()) << decision.error().to_string();
  EXPECT_EQ(decision.value(), actors::AtomicStatus::kCommitted);

  // The asset values swapped across subnets, atomically.
  EXPECT_EQ(kv_get(*sub_a, user_a, app_a, "asset"), to_bytes("ownedByB"));
  EXPECT_EQ(kv_get(*sub_b, user_b, app_b, "asset"), to_bytes("ownedByA"));
}

TEST_F(AtomicFixture, ExplicitAbortRestoresInputs) {
  AtomicExecution swap = make_swap();
  ASSERT_TRUE(swap.lock_inputs().ok());
  ASSERT_TRUE(swap.compute_output().ok());
  ASSERT_TRUE(swap.init().ok());
  ASSERT_TRUE(swap.submit(0).ok());
  // Party B aborts instead of submitting (Fig. 5 right edge).
  ASSERT_TRUE(swap.abort(1).ok());
  auto decision = swap.await_decision();
  ASSERT_TRUE(decision.ok()) << decision.error().to_string();
  EXPECT_EQ(decision.value(), actors::AtomicStatus::kAborted);
  ASSERT_TRUE(swap.finalize(decision.value()).ok());

  // Nothing changed; keys unlocked and writable again.
  EXPECT_EQ(kv_get(*sub_a, user_a, app_a, "asset"), to_bytes("ownedByA"));
  EXPECT_EQ(kv_get(*sub_b, user_b, app_b, "asset"), to_bytes("ownedByB"));
  actors::KvParams put{to_bytes("asset"), to_bytes("writable")};
  auto r = h.call(*sub_a, user_a, app_a, actors::kv_method::kPut, encode(put),
                  TokenAmount());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ok());
}

TEST_F(AtomicFixture, MismatchedOutputsAbort) {
  // Party B computes (or claims) a different output: the coordinator must
  // abort — this is the output-matching check standing in for validity
  // (the open question of paper §IV-D is documented in DESIGN.md).
  AtomicExecution swap = make_swap();
  ASSERT_TRUE(swap.lock_inputs().ok());
  ASSERT_TRUE(swap.compute_output().ok());
  ASSERT_TRUE(swap.init().ok());
  ASSERT_TRUE(swap.submit(0).ok());

  actors::AtomicSubmitParams forged{
      swap.exec_id(), Cid::of(CidCodec::kActorState, to_bytes("forged"))};
  auto r = h.send_cross(*sub_b, user_b, h.root().id, chain::kScaAddr,
                        TokenAmount(), actors::sca_method::kAtomicSubmit,
                        encode(forged));
  ASSERT_TRUE(r.ok());

  auto decision = swap.await_decision();
  ASSERT_TRUE(decision.ok()) << decision.error().to_string();
  EXPECT_EQ(decision.value(), actors::AtomicStatus::kAborted);
  ASSERT_TRUE(swap.finalize(decision.value()).ok());
  EXPECT_EQ(kv_get(*sub_a, user_a, app_a, "asset"), to_bytes("ownedByA"));
}

TEST_F(AtomicFixture, TimelinessAbortUnblocksSilentParty) {
  // Party B goes silent after locking; party A escapes by aborting
  // (property (i) Timeliness: "To prevent the protocol from blocking if
  // one of the parties disappears halfway, any user is allowed to abort").
  AtomicExecution swap = make_swap();
  ASSERT_TRUE(swap.lock_inputs().ok());
  ASSERT_TRUE(swap.compute_output().ok());
  ASSERT_TRUE(swap.init().ok());
  ASSERT_TRUE(swap.submit(0).ok());
  // B never submits. A waits a while, then aborts.
  h.run_for(10 * sim::kSecond);
  {
    const auto sca = h.root().node(0).sca_state();
    EXPECT_EQ(sca.atomic_execs.at(swap.exec_id()).status,
              actors::AtomicStatus::kPending);
  }
  ASSERT_TRUE(swap.abort(0).ok());
  auto decision = swap.await_decision();
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value(), actors::AtomicStatus::kAborted);
  ASSERT_TRUE(swap.finalize(decision.value()).ok());
}

TEST_F(AtomicFixture, LockedInputRejectsConcurrentWrites) {
  // Consistency: while an execution is in flight, the input state cannot
  // be mutated by other messages.
  AtomicExecution swap = make_swap();
  ASSERT_TRUE(swap.lock_inputs().ok());
  actors::KvParams put{to_bytes("asset"), to_bytes("sneaky")};
  auto r = h.call(*sub_a, user_a, app_a, actors::kv_method::kPut, encode(put),
                  TokenAmount());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());  // locked
}

TEST_F(AtomicFixture, NotificationCrossMsgsReachPartySubnets) {
  AtomicExecution swap = make_swap();
  auto decision = swap.run();
  ASSERT_TRUE(decision.ok());
  // The coordinator enqueued zero-value notification cross-msgs toward
  // both party subnets; they eventually apply there (observable as
  // applied top-down msgs beyond the funding one).
  ASSERT_TRUE(h.run_until(
      [&] {
        return sub_a->node(0).sca_state().applied_topdown_nonce >= 2 &&
               sub_b->node(0).sca_state().applied_topdown_nonce >= 2;
      },
      60 * sim::kSecond));
}

}  // namespace
}  // namespace hc::runtime
