#!/usr/bin/env bash
# Full check: Debug build with ASan+UBSan and the whole test suite, then a
# ThreadSanitizer build (TSan cannot combine with ASan) running the
# parallel-determinism suite and the chaos/Byzantine smokes at multiple
# worker-thread counts, then a plain optimized build running the profiler
# smoke and the bench-baseline regression gate (DESIGN.md §13).
# Usage: scripts/check.sh [build-dir] [tsan-build-dir] [perf-build-dir]
#        (defaults: build-asan, build-tsan, build-perf)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"
PERF_DIR="${3:-build-perf}"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# Chaos smoke first: the standard fault scenarios x 3 seeds (DESIGN.md §9)
# under the sanitizers — fault-handling regressions fail fast, before the
# full suite spends its time.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^ChaosSweep\.'

# Byzantine smoke: one equivocation scenario x 2 seeds under the
# sanitizers — the watcher/slashing path is pointer-heavy (gossip decode,
# proof assembly), so memory bugs there surface here first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^ByzantineSmoke\.'

# Overload smoke (DESIGN.md §14): the bounded-mempool admission/eviction
# properties, the policy-vs-fault drop split in the network queue, and the
# 10x surge scenario — whose invariant report asserts every queue peak
# stayed under its cap — all under the sanitizers, since shedding exercises
# the eviction/erase paths most likely to hide a use-after-free.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'MempoolOverload|OverloadSurge|NetQueue'

# Recovery smoke (DESIGN.md §15): the durable-log corruption/property
# cases, the WAL round-trips, the engine vote-restore suite and the full
# crash/restart recovery scenarios — all under the sanitizers. Recovery
# parses CRC-framed bytes off a (simulated) damaged disk and rebuilds
# chain state from them, which is exactly where an out-of-bounds read or
# use-after-free of a torn frame would hide.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'DurableLog|DurableStore|Wal\.|VoteRestore|DurableRecovery'

# State-commitment stage (DESIGN.md §12): the differential suite drives
# random mutate/remove/journal-revert/snapshot sequences against a
# from-scratch Merkle rebuild, and the incremental-tree sweeps hammer the
# digest-cache index arithmetic — the code most likely to hide an
# out-of-bounds read, so it runs under ASan explicitly.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'StateCommitment|IncrementalMerkle'

# Scale smoke (DESIGN.md §17): the interned-identity invariants (hash,
# codec, growth bounds), the static-tree boot + retention/viewer-gating
# suite, and the trimmed 85-subnet city bench — all under ASan. The intern
# table is lock-free chunked storage and the flyweight paths share one
# genesis tree across replicas, exactly where a dangling entry or
# use-after-free of a pruned block would hide.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'InternIdentity|InternGrowth|StaticTree|ChainStoreRetention'
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_scale
(cd "$BUILD_DIR" && ./bench/bench_scale --threads 1 \
   --benchmark_filter='run_city/fanout:4')

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# ---- ThreadSanitizer stage (DESIGN.md §11) -------------------------------
# The ParallelExecutor runs subnet lanes on worker threads; TSan checks the
# cross-lane machinery (outboxes, barriers, shared metrics/trace/sigcache)
# under the real chaos workloads. parallel_test sweeps 1/2/4 threads — its
# fingerprints cover state roots, so the incremental commitment's
# mutable-cache discipline (flush only from the owning lane, published
# snapshots read-only) is exercised here too.
TSAN_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"

cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"

cmake --build "$TSAN_DIR" -j "$(nproc)"

ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" \
  -R '^ParallelDeterminism\.'
# Intern determinism (DESIGN.md §17): concurrent interning from worker
# lanes must be race-free AND unobservable (byte-identical fingerprints at
# 1/2/4 threads).
ctest --test-dir "$TSAN_DIR" --output-on-failure -R '^InternDeterminism\.'
ctest --test-dir "$TSAN_DIR" --output-on-failure -R '^ChaosSweep\.'
ctest --test-dir "$TSAN_DIR" --output-on-failure -R '^ByzantineSmoke\.'

# ---- Profiler smoke + perf regression gate (DESIGN.md §13) ---------------
# Plain optimized build (no sanitizers — they would swamp the wall-clock
# attribution). A cheap fig1 subset runs single-threaded; the profiler
# sidecars must parse and meet the coverage/overhead bounds, and the
# simulated-time metrics must match the committed baseline within 10%
# (they are deterministic per seed, so on unchanged code the deltas are
# exactly zero).
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$PERF_DIR" -j "$(nproc)" --target bench_fig1_scaling \
  --target bench_overload --target bench_recovery --target bench_hotpath

PERF_OUT="$PERF_DIR/perf-gate"
rm -rf "$PERF_OUT" && mkdir -p "$PERF_OUT"
(cd "$PERF_OUT" && \
 ../bench/bench_fig1_scaling --threads 1 \
   --benchmark_filter='run_scaling/subnets:(0|2)/')

python3 scripts/profile_smoke.py \
  "$PERF_OUT/BENCH_fig1_scaling.profile.json" \
  "$PERF_OUT/BENCH_fig1_scaling.folded"
python3 scripts/bench_diff.py \
  BENCH_fig1.json "$PERF_OUT/BENCH_fig1_scaling.metrics.json"

# Overload regression gate (DESIGN.md §14): the full 1x/4x/10x sweep. The
# bench itself fails the run if any queue peak exceeds its cap; bench_diff
# then holds committed throughput, event count and commit p99 (admitted
# traffic must stay fast under surge) to the committed baseline.
(cd "$PERF_OUT" && ../bench/bench_overload --threads 1)
python3 scripts/bench_diff.py \
  BENCH_overload.json "$PERF_OUT/BENCH_overload.metrics.json"

# Recovery regression gate (DESIGN.md §15): WAL-replay vs disk-lost restart
# across chain lengths. The bench itself fails the run if a wal-replay
# recovery falls short of the pre-crash height (or a disk-lost one claims a
# recovered chain); bench_diff then holds event count and commit p99 —
# which bounds the simulated resync time — to the committed baseline.
(cd "$PERF_OUT" && ../bench/bench_recovery --threads 1)
python3 scripts/bench_diff.py \
  BENCH_recovery.json "$PERF_OUT/BENCH_recovery.metrics.json"

# Hot-path memory gate (DESIGN.md §16): saturating load on a small
# hierarchy. The bench itself fails when the envelope decode cache never
# hits or physical bytes exceed logical bytes; bench_diff then holds arena
# demand (alloc_bytes_total) and the decode hit/miss counts — deterministic
# per seed, so unchanged code diffs exactly zero — to the committed
# baseline.
(cd "$PERF_OUT" && ../bench/bench_hotpath --threads 1)
python3 scripts/bench_diff.py \
  BENCH_hotpath.json "$PERF_OUT/BENCH_hotpath.metrics.json"

# City-scale memory gate (DESIGN.md §17): the full 1111-subnet / 10⁶-
# account boot plus the 85-subnet trim. bench_diff holds the deterministic
# footprint (peak bytes/node, bytes/account) and committed/event counts to
# the committed baseline, and — since both files come from this machine
# class — gates the wall clock too (generous 75%: the city must never get
# an order of magnitude slower to boot).
cmake --build "$PERF_DIR" -j "$(nproc)" --target bench_scale
(cd "$PERF_OUT" && ../bench/bench_scale --threads 1)
python3 scripts/bench_diff.py --wall-gate 75 \
  BENCH_scale.json "$PERF_OUT/BENCH_scale.json"
# The city boot is deliberately flat (five phases share the time), so the
# profiler smoke runs with a looser top-3 coverage bound than fig1's.
python3 scripts/profile_smoke.py --coverage 0.5 \
  "$PERF_OUT/BENCH_scale.profile.json" "$PERF_OUT/BENCH_scale.folded"
