#!/usr/bin/env bash
# Full check: Debug build with ASan+UBSan, then the whole test suite.
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

cmake --build "$BUILD_DIR" -j "$(nproc)"

# Chaos smoke first: the standard fault scenarios x 3 seeds (DESIGN.md §9)
# under the sanitizers — fault-handling regressions fail fast, before the
# full suite spends its time.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^ChaosSweep\.'

# Byzantine smoke: one equivocation scenario x 2 seeds under the
# sanitizers — the watcher/slashing path is pointer-heavy (gossip decode,
# proof assembly), so memory bugs there surface here first.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R '^ByzantineSmoke\.'

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
