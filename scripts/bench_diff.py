#!/usr/bin/env python3
"""Compare a freshly generated bench sidecar against a committed baseline.

Usage:
    bench_diff.py BASELINE.json FRESH.json [--threshold PCT]

Both files are bench metric sidecars ({"bench": ..., "runs": [{"label",
"metrics", ...}]}); the optional "meta"/"seed" fields (schema 2) are
tolerated in either file. Runs are matched by label (intersection); for
each matched run the script derives three behavioural signals from the
metric snapshot:

    committed  sum of node_user_msgs_executed_total   (work done)
    events     sim_events_run_total                   (work spent)
    p99_us     block_commit_latency_us p99            (responsiveness)

and fails (exit 1) when, beyond --threshold percent (default 10):
    - committed drops        (less useful work than the baseline),
    - events rise            (more simulation work for the same run),
    - p99 rises              (commits got slower in simulated time).

Runs may additionally carry a "scale" object (bench_scale, DESIGN.md §17)
with deterministic memory-footprint fields; when both sides have one, the
script also gates:

    peak_bytes_per_node  max SubnetNode::mem_bytes() over the run (rise bad)
    bytes_per_account    peak aggregate node bytes / pre-funded accounts

Sim metrics are deterministic per seed, so on unchanged code the gate
passes trivially (all deltas are exactly 0). Wall-clock meta fields are
reported but never gate by default: they depend on the machine, not the
code. Pass --wall-gate PCT to additionally fail when the fresh file's
meta.wall_seconds exceeds the baseline's by more than PCT percent — only
meaningful when both files were produced on comparable hardware.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_doc(path: str) -> tuple[dict[str, dict], dict]:
    """Runs keyed by label (the full run objects) plus the meta block."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    runs = {}
    for run in doc.get("runs", []):
        runs[run["label"]] = run
    return runs, doc.get("meta", {})


def sum_counter(metrics: dict, family: str) -> int | None:
    fam = metrics.get("counters", {}).get(family)
    if fam is None:
        return None
    return sum(fam.values())


def histogram_p99(metrics: dict, family: str) -> float | None:
    """p99 across every labelset of `family`, via cumulative-bucket
    interpolation over the merged buckets (bounds are identical across
    labelsets of one family by construction)."""
    fam = metrics.get("histograms", {}).get(family)
    if not fam:
        return None
    bounds = None
    merged: list[int] = []
    total = 0
    for h in fam.values():
        if bounds is None:
            bounds = h["bounds"]
            merged = [0] * len(h["buckets"])
        if h["bounds"] != bounds or len(h["buckets"]) != len(merged):
            return None  # incompatible shapes; skip the signal
        for i, b in enumerate(h["buckets"]):
            merged[i] += b
        total += h["count"]
    if total == 0 or bounds is None:
        return None
    target = 0.99 * total
    cumulative = 0
    for i, count in enumerate(merged):
        prev = cumulative
        cumulative += count
        if cumulative >= target:
            lo = bounds[i - 1] if i > 0 else 0
            hi = bounds[i] if i < len(bounds) else bounds[-1] * 2
            frac = (target - prev) / count if count else 0.0
            return lo + frac * (hi - lo)
    return float(bounds[-1])


def pct_change(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return 100.0 * (new - old) / old


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated regression in percent (default 10)")
    ap.add_argument("--wall-gate", type=float, default=None, metavar="PCT",
                    help="also fail when fresh meta.wall_seconds exceeds the "
                         "baseline's by more than PCT percent (off by "
                         "default: wall clock is machine-dependent)")
    args = ap.parse_args()

    base_doc, base_meta = load_doc(args.baseline)
    fresh_doc, fresh_meta = load_doc(args.fresh)
    base = {k: v.get("metrics", {}) for k, v in base_doc.items()}
    fresh = {k: v.get("metrics", {}) for k, v in fresh_doc.items()}
    labels = sorted(set(base) & set(fresh))
    if not labels:
        print(f"bench_diff: no common run labels between {args.baseline} "
              f"({sorted(base)}) and {args.fresh} ({sorted(fresh)})",
              file=sys.stderr)
        return 1

    skipped = sorted((set(base) | set(fresh)) - set(labels))
    if skipped:
        print(f"bench_diff: comparing {len(labels)} run(s); "
              f"not in both files (skipped): {skipped}")

    failures = []
    for label in labels:
        b, f = base[label], fresh[label]
        checks = [
            # (name, baseline, fresh, regression = fresh is 'direction' of base)
            ("committed", sum_counter(b, "node_user_msgs_executed_total"),
             sum_counter(f, "node_user_msgs_executed_total"), "lower"),
            ("events", sum_counter(b, "sim_events_run_total"),
             sum_counter(f, "sim_events_run_total"), "higher"),
            ("p99_us", histogram_p99(b, "block_commit_latency_us"),
             histogram_p99(f, "block_commit_latency_us"), "higher"),
            # Memory/zero-copy signals (DESIGN.md §16). Absent families are
            # skipped, so baselines predating them still gate the rest.
            ("alloc_bytes", sum_counter(b, "alloc_bytes_total"),
             sum_counter(f, "alloc_bytes_total"), "higher"),
            ("decode_misses", sum_counter(b, "payload_decode_misses_total"),
             sum_counter(f, "payload_decode_misses_total"), "higher"),
            ("decode_hits", sum_counter(b, "payload_decode_hits_total"),
             sum_counter(f, "payload_decode_hits_total"), "lower"),
        ]
        # Memory-footprint gate (DESIGN.md §17): deterministic logical
        # sizes from bench_scale's "scale" object. Only gated when both
        # sides carry the object, so older baselines still gate the rest.
        b_scale = base_doc[label].get("scale", {})
        f_scale = fresh_doc[label].get("scale", {})
        for field in ("peak_bytes_per_node", "bytes_per_account"):
            checks.append((field, b_scale.get(field), f_scale.get(field),
                           "higher"))

        for name, old, new, bad_direction in checks:
            if old is None or new is None:
                continue
            delta = pct_change(old, new)
            regressed = (delta < -args.threshold
                         if bad_direction == "lower"
                         else delta > args.threshold)
            marker = "FAIL" if regressed else "ok"
            print(f"  {label:48s} {name:10s} {old:>14.1f} -> {new:>14.1f} "
                  f"({delta:+7.2f}%) {marker}")
            if regressed:
                failures.append((label, name, delta))

    # Opt-in wall-clock gate: one number per file (the meta block), not per
    # run. Reported either way so perf drift is visible in the log.
    base_wall = base_meta.get("wall_seconds")
    fresh_wall = fresh_meta.get("wall_seconds")
    if base_wall is not None and fresh_wall is not None:
        delta = pct_change(base_wall, fresh_wall)
        gated = args.wall_gate is not None
        regressed = gated and delta > args.wall_gate
        marker = "FAIL" if regressed else ("ok" if gated else "info")
        print(f"  {'(meta)':48s} {'wall_s':10s} {base_wall:>14.3f} -> "
              f"{fresh_wall:>14.3f} ({delta:+7.2f}%) {marker}")
        if regressed:
            failures.append(("(meta)", "wall_seconds", delta))

    if failures:
        print(f"\nbench_diff: {len(failures)} regression(s) beyond "
              f"{args.threshold:.1f}%:", file=sys.stderr)
        for label, name, delta in failures:
            print(f"  {label}: {name} {delta:+.2f}%", file=sys.stderr)
        return 1
    print(f"bench_diff: {len(labels)} run(s) within {args.threshold:.1f}% "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
