#!/usr/bin/env python3
"""Validate a bench's profiler sidecars (ISSUE 6 acceptance criteria).

Usage:
    profile_smoke.py BENCH_<name>.profile.json BENCH_<name>.folded \\
        [--coverage 0.6] [--max-overhead 0.05]

Checks:
    1. The profile has a non-empty phase table (top-N hotspots exist).
    2. Every folded-stack line parses as "path;seg;... <int ns>" and the
       paths correspond to phases present in the profile.
    3. The top-3 phases' self time covers >= --coverage of attributed
       wall time (default 0.6): attribution is meaningful, not smeared.
    4. The profiler's estimated overhead is <= --max-overhead of
       attributed runtime (default 5%).
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(msg: str) -> int:
    print(f"profile_smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("profile_json")
    ap.add_argument("folded")
    ap.add_argument("--coverage", type=float, default=0.6,
                    help="min top-3 self-time share of attributed time")
    ap.add_argument("--max-overhead", type=float, default=0.05,
                    help="max profiler overhead as share of attributed time")
    args = ap.parse_args()

    with open(args.profile_json, "r", encoding="utf-8") as f:
        doc = json.load(f)
    profile = doc.get("profile", doc)  # tolerate a bare profile_to_json blob

    phases = profile.get("phases", [])
    if not phases:
        return fail(f"{args.profile_json} has an empty phase table")
    attributed = profile.get("attributed_ns", 0)
    if attributed <= 0:
        return fail("attributed_ns is not positive")

    phase_names = {p["name"] for p in phases}
    n_lines = 0
    folded_self = 0
    with open(args.folded, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            path, sep, ns = line.rpartition(" ")
            if not sep or not path:
                return fail(f"{args.folded}:{lineno}: no 'path ns' split: "
                            f"{line!r}")
            try:
                ns_val = int(ns)
            except ValueError:
                return fail(f"{args.folded}:{lineno}: non-integer sample "
                            f"count {ns!r}")
            if ns_val <= 0:
                return fail(f"{args.folded}:{lineno}: non-positive self "
                            f"time {ns_val}")
            for seg in path.split(";"):
                if seg not in phase_names:
                    return fail(f"{args.folded}:{lineno}: unknown phase "
                                f"{seg!r} in stack {path!r}")
            n_lines += 1
            folded_self += ns_val
    if n_lines == 0:
        return fail(f"{args.folded} is empty")
    if folded_self != attributed:
        return fail(f"folded self-time sum {folded_self} != "
                    f"attributed_ns {attributed}")

    top3 = sum(p["self_ns"] for p in phases[:3])
    coverage = top3 / attributed
    overhead = profile.get("overhead_ns_est", 0) / attributed
    top_names = [p["name"] for p in phases[:3]]
    print(f"profile_smoke: {len(phases)} phases, {n_lines} folded stacks, "
          f"top-3 {top_names} cover {coverage:.1%} of "
          f"{attributed / 1e6:.1f} ms attributed, "
          f"overhead est {overhead:.2%}")
    if coverage < args.coverage:
        return fail(f"top-3 coverage {coverage:.1%} < {args.coverage:.0%}")
    if overhead > args.max_overhead:
        return fail(f"estimated overhead {overhead:.2%} > "
                    f"{args.max_overhead:.0%}")
    print("profile_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
