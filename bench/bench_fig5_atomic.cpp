// E5 — Fig. 5: atomic cross-net execution.
//
// Measures the 2PC protocol end to end with the root SCA as coordinator:
//   - commit latency vs number of parties (2..4 subnets),
//   - commit latency vs party depth (siblings at depth 1 vs nested depth 2),
//   - abort latency (one party aborts instead of submitting).
//
// Counters: phase_lock_ms / phase_decide_ms / total_sim_ms (simulated),
//           parties, depth, committed (1 = commit, 0 = abort).
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("fig5_atomic");
  return e;
}

struct AtomicWorld {
  runtime::Hierarchy h;
  std::vector<runtime::Subnet*> homes;
  std::vector<runtime::User> users;
  std::vector<Address> apps;

  AtomicWorld(std::uint64_t seed, int n_parties, int depth)
      : h(bench_config(seed)) {
    for (int i = 0; i < n_parties; ++i) {
      runtime::Subnet* parent = &h.root();
      runtime::Subnet* home = nullptr;
      for (int d = 0; d < depth; ++d) {
        auto s = h.spawn_subnet(
            *parent, "p" + std::to_string(i) + "d" + std::to_string(d),
            bench_params(), 3, TokenAmount::whole(5), subnet_engine());
        if (!s.ok()) return;
        home = s.value();
        parent = home;
      }
      homes.push_back(home);
    }
    if (static_cast<int>(homes.size()) != n_parties) return;

    for (int i = 0; i < n_parties; ++i) {
      auto u = h.make_user("party-" + std::to_string(i),
                           TokenAmount::whole(1000));
      if (!u.ok()) return;
      users.push_back(u.value());
      if (!h.send_cross(h.root(), users.back(), homes[static_cast<std::size_t>(i)]->id,
                        users.back().addr, TokenAmount::whole(100))
               .ok()) {
        return;
      }
    }
    const bool funded = h.run_until(
        [&] {
          for (std::size_t i = 0; i < users.size(); ++i) {
            if (homes[i]->node(0).balance(users[i].addr).is_zero()) {
              return false;
            }
          }
          return true;
        },
        300 * sim::kSecond);
    if (!funded) return;

    for (std::size_t i = 0; i < users.size(); ++i) {
      actors::ExecParams exec;
      exec.code = chain::kCodeKvApp;
      auto dep = h.call(*homes[i], users[i], chain::kInitAddr,
                        actors::init_method::kExec, encode(exec),
                        TokenAmount());
      if (!dep.ok() || !dep.value().ok()) return;
      auto addr = decode<Address>(dep.value().ret);
      if (!addr.ok()) return;
      actors::KvParams put{to_bytes("slot"),
                           to_bytes("v" + std::to_string(i))};
      auto r = h.call(*homes[i], users[i], addr.value(),
                      actors::kv_method::kPut, encode(put), TokenAmount());
      if (!r.ok() || !r.value().ok()) return;
      apps.push_back(addr.value());
    }
  }

  [[nodiscard]] bool ok() const { return apps.size() == users.size() && !apps.empty(); }

  runtime::AtomicExecution make_exec() {
    std::vector<runtime::AtomicPartySpec> specs;
    for (std::size_t i = 0; i < users.size(); ++i) {
      specs.push_back(runtime::AtomicPartySpec{homes[i], users[i], apps[i],
                                               to_bytes("slot")});
    }
    return runtime::AtomicExecution(
        h, h.root(), std::move(specs), [](const std::vector<Bytes>& in) {
          // Rotate values across parties.
          std::vector<Bytes> out(in.size());
          for (std::size_t i = 0; i < in.size(); ++i) {
            out[i] = in[(i + 1) % in.size()];
          }
          return out;
        });
  }
};

void run_commit(benchmark::State& state) {
  const int parties = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    AtomicWorld w(6000 + static_cast<std::uint64_t>(parties) * 10 + depth,
                  parties, depth);
    if (!w.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    runtime::AtomicExecution exec = w.make_exec();
    const sim::Time t0 = w.h.scheduler().now();
    if (!exec.lock_inputs().ok() || !exec.compute_output().ok()) {
      state.SkipWithError("lock failed");
      return;
    }
    const sim::Time t_locked = w.h.scheduler().now();
    if (!exec.init().ok()) {
      state.SkipWithError("init failed");
      return;
    }
    for (int i = 0; i < parties; ++i) {
      if (!exec.submit(static_cast<std::size_t>(i)).ok()) {
        state.SkipWithError("submit failed");
        return;
      }
    }
    auto decision = exec.await_decision(600 * sim::kSecond);
    if (!decision.ok()) {
      state.SkipWithError("no decision");
      return;
    }
    const sim::Time t_decided = w.h.scheduler().now();
    if (!exec.finalize(decision.value()).ok()) {
      state.SkipWithError("finalize failed");
      return;
    }
    state.counters["phase_lock_ms"] =
        static_cast<double>(t_locked - t0) / 1000.0;
    state.counters["phase_decide_ms"] =
        static_cast<double>(t_decided - t_locked) / 1000.0;
    state.counters["total_sim_ms"] =
        static_cast<double>(w.h.scheduler().now() - t0) / 1000.0;
    state.counters["parties"] = parties;
    state.counters["depth"] = depth;
    state.counters["committed"] =
        decision.value() == actors::AtomicStatus::kCommitted ? 1 : 0;
    exporter().capture(w.h,
                       "commit/parties=" + std::to_string(parties) +
                           ",depth=" + std::to_string(depth),
                       6000 + static_cast<std::uint64_t>(parties) * 10 +
                           static_cast<std::uint64_t>(depth));
  }
}

BENCHMARK(run_commit)
    ->ArgNames({"parties", "depth"})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({2, 2})  // parties two levels below the coordinator
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void run_abort(benchmark::State& state) {
  for (auto _ : state) {
    AtomicWorld w(6100, 2, 1);
    if (!w.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    runtime::AtomicExecution exec = w.make_exec();
    const sim::Time t0 = w.h.scheduler().now();
    if (!exec.lock_inputs().ok() || !exec.compute_output().ok() ||
        !exec.init().ok() || !exec.submit(0).ok() || !exec.abort(1).ok()) {
      state.SkipWithError("protocol failed");
      return;
    }
    auto decision = exec.await_decision(600 * sim::kSecond);
    if (!decision.ok() ||
        decision.value() != actors::AtomicStatus::kAborted ||
        !exec.finalize(decision.value()).ok()) {
      state.SkipWithError("abort path failed");
      return;
    }
    state.counters["total_sim_ms"] =
        static_cast<double>(w.h.scheduler().now() - t0) / 1000.0;
    state.counters["committed"] = 0;
    exporter().capture(w.h, "abort/parties=2,depth=1", 6100);
  }
}

BENCHMARK(run_abort)->Iterations(1)->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
