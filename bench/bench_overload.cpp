// Overload sweep (DESIGN.md §14): drive one child subnet at 1x / 4x / 10x
// of its capacity ceiling with every bound engaged — bounded mempool with
// per-sender caps, bounded per-receiver gossip queues — and show graceful
// degradation: committed throughput pins at the ceiling, every queue peak
// stays under its cap, the excess is shed deterministically, and clients
// absorb the backpressure through kOverloaded retries instead of growing
// any buffer without bound.
//
// Reported counters (per benchmark row):
//   mult             offered-load multiplier over the capacity ceiling
//   offered_tps      submissions attempted per simulated second
//   committed_tps    user tx committed per simulated second
//   retries          kOverloaded refusals absorbed by client backoff
//   mempool_sheds    mempool admission refusals + evictions (all nodes)
//   mempool_peak     max pool occupancy seen on any node (cap: kPoolCap)
//   queue_peak_depth max per-node delivery-queue depth (cap: kQueueDepth)
//   queue_peak_kb    max per-node delivery-queue bytes (cap: kQueueBytes)
//
// The run FAILS (SkipWithError) if any peak exceeds its cap — the bench
// doubles as the "bounded under surge" acceptance check. The p99 signal
// for the regression gate comes from the block_commit_latency_us histogram
// in the metrics sidecar: under overload, commit latency of ADMITTED
// traffic must stay close to the uncongested run (the pool never grows
// past kPoolCap, so selection cost is bounded too).
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("overload");
  return e;
}

constexpr sim::Duration kWindow = 10 * sim::kSecond;
constexpr std::size_t kMsgsPerBlock = 10;  // 100ms blocks => 100 tx/s ceiling
constexpr std::size_t kBasePerTick = 10;   // 1x = exactly the ceiling

// Caps under test. Pool: two load users at 256 pending each fill the pool
// exactly; every further submission is refused, never buffered. Queue caps
// are sized to sit WELL above what the drained gossip mesh needs, so they
// bound memory without perturbing consensus traffic.
constexpr std::size_t kPoolCap = 512;
constexpr std::size_t kPerSenderCap = 256;
constexpr std::size_t kQueueDepth = 4096;
constexpr std::size_t kQueueBytes = 1u << 22;  // 4 MiB
constexpr std::size_t kTopicDepth = 2048;

void configure_capacity(runtime::Subnet& subnet) {
  for (std::size_t i = 0; i < subnet.size(); ++i) {
    subnet.node(i).set_max_user_msgs_per_block(kMsgsPerBlock);
  }
}

void run_overload(benchmark::State& state) {
  const auto mult = static_cast<std::size_t>(state.range(0));
  const std::uint64_t seed = 9000 + mult;
  for (auto _ : state) {
    runtime::HierarchyConfig cfg = bench_config(seed);
    cfg.mempool = chain::MempoolConfig{kPoolCap, kPerSenderCap, 1024};
    cfg.gossip.node_queue = net::NodeQueuePolicy{
        kQueueDepth, kQueueBytes, kTopicDepth, 20 * sim::kMicrosecond};
    runtime::Hierarchy h(cfg);
    configure_capacity(h.root());

    auto s = h.spawn_subnet(h.root(), "overload", bench_params(), 3,
                            TokenAmount::whole(5), subnet_engine());
    if (!s.ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
    runtime::Subnet& child = *s.value();
    configure_capacity(child);

    LoadGenerator load(child, 2, "ovl-m" + std::to_string(mult));
    if (!fund_in_subnet(h, child, load.addresses(),
                        TokenAmount::whole(100))) {
      state.SkipWithError("funding failed");
      return;
    }

    const std::uint64_t before = child.node(0).stats().user_msgs_executed;
    std::size_t offered = 0;
    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      load.pump(kBasePerTick * mult);
      offered += kBasePerTick * mult;
      h.run_for(100 * sim::kMillisecond);
    }
    h.run_for(2 * sim::kSecond);  // drain in-flight blocks and retries

    const std::uint64_t committed =
        child.node(0).stats().user_msgs_executed - before;
    std::uint64_t sheds = 0;
    std::size_t pool_peak = 0;
    for (std::size_t i = 0; i < child.size(); ++i) {
      const auto& shed = child.node(i).mempool_shed_stats();
      sheds += shed.total();
      pool_peak = std::max(pool_peak,
                           std::max(shed.peak_items,
                                    child.node(i).mempool_size()));
    }
    const net::Network::Stats net = h.network().stats();

    // Bounded-under-surge acceptance: a peak past its cap means a bound
    // leaked, which no amount of throughput can excuse.
    if (pool_peak > kPoolCap) {
      state.SkipWithError("mempool peak exceeded cap");
      return;
    }
    if (net.queue_peak_depth > kQueueDepth ||
        net.queue_peak_bytes > kQueueBytes) {
      state.SkipWithError("delivery-queue peak exceeded cap");
      return;
    }

    const double secs =
        static_cast<double>(kWindow) / static_cast<double>(sim::kSecond);
    state.counters["mult"] = static_cast<double>(mult);
    state.counters["offered_tps"] = static_cast<double>(offered) / secs;
    state.counters["committed_tps"] = static_cast<double>(committed) / secs;
    state.counters["retries"] = static_cast<double>(load.retried());
    state.counters["mempool_sheds"] = static_cast<double>(sheds);
    state.counters["mempool_peak"] = static_cast<double>(pool_peak);
    state.counters["queue_peak_depth"] =
        static_cast<double>(net.queue_peak_depth);
    state.counters["queue_peak_kb"] =
        static_cast<double>(net.queue_peak_bytes) / 1024.0;

    // Mirror the peaks into the metrics sidecar so the committed baseline
    // records them next to the shed counters (all CAS-max / monotonic sums:
    // identical at any worker-thread count).
    auto& m = h.obs().metrics;
    const obs::Labels row{{"mult", std::to_string(mult)}};
    m.gauge("bench_overload_pool_peak", row)
        .set(static_cast<std::int64_t>(pool_peak));
    m.gauge("bench_overload_queue_peak_depth", row)
        .set(static_cast<std::int64_t>(net.queue_peak_depth));
    m.gauge("bench_overload_queue_peak_bytes", row)
        .set(static_cast<std::int64_t>(net.queue_peak_bytes));
    m.gauge("bench_overload_retries", row)
        .set(static_cast<std::int64_t>(load.retried()));
    exporter().capture(h, "overload/mult=" + std::to_string(mult), seed);
  }
}

BENCHMARK(run_overload)
    ->ArgName("mult")
    ->Arg(1)   // uncongested reference: offered == capacity
    ->Arg(4)
    ->Arg(10)  // deep saturation
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
