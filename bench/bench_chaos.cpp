// E7 — robustness under injected faults: the chaos sweep as a benchmark.
//
// Each benchmark arg is one standard FaultPlan scenario (loss, partition,
// crash/restart, gray links, duplication) executed by the ChaosRunner over
// a fixed seed set. Counters report, per scenario: how many seeds converged
// to quiescence, how many passed the full invariant suite (firewall/supply
// conservation, no negative balances, queues drained, checkpoints committed,
// replica agreement), total faults injected, and the simulated time budget.
//
// Sidecars: BENCH_chaos.metrics.json accumulates the per-run metric
// snapshots (reason-labelled drop counters, checkpoint retry counters,
// chaos_faults_injected_total); BENCH_chaos.trace.json keeps the last run's
// Chrome trace with its "chaos" track of fault instants.
#include "bench_common.hpp"

#include "chaos/runner.hpp"

namespace hc::bench {
namespace {

const std::vector<std::uint64_t>& bench_seeds() {
  static const std::vector<std::uint64_t> seeds = {7, 21, 1234};
  return seeds;
}

chaos::RunnerConfig chaos_config() {
  chaos::RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 1;  // exercise a three-level branch: root -> c0 -> g0
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 10 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  return cfg;
}

/// Accumulates per-run snapshots; written when the binary exits.
class ChaosSidecar {
 public:
  void capture(const chaos::RunResult& r) {
    runs_.push_back({r.scenario + "/seed-" + std::to_string(r.seed), r.seed,
                     r.metrics_json});
  }

  ~ChaosSidecar() {
    if (runs_.empty()) return;
    std::string json = "{\n  \"bench\": \"chaos\",\n  \"meta\": " +
                       bench_meta_json(start_) + ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      json += "    {\"label\": \"" + obs::json_escape(runs_[i].label) +
              "\", \"seed\": " + std::to_string(runs_[i].seed) +
              ", \"metrics\": " + runs_[i].metrics + "}";
      json += (i + 1 < runs_.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    (void)obs::write_text_file("BENCH_chaos.metrics.json", json);
  }

 private:
  struct Run {
    std::string label;
    std::uint64_t seed = 0;
    std::string metrics;
  };
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::vector<Run> runs_;
};

ChaosSidecar sidecar;

void run_chaos_scenario(benchmark::State& state) {
  const auto scenarios = chaos::ChaosRunner::standard_scenarios();
  const auto& scenario =
      scenarios.at(static_cast<std::size_t>(state.range(0)));
  state.SetLabel(scenario.name);

  for (auto _ : state) {
    chaos::ChaosRunner runner(chaos_config());
    std::size_t converged = 0;
    std::size_t invariants_ok = 0;
    std::size_t faults = 0;
    for (const std::uint64_t seed : bench_seeds()) {
      const chaos::RunResult r = runner.run(scenario, seed);
      converged += r.converged ? 1 : 0;
      invariants_ok += r.report.ok() ? 1 : 0;
      faults += r.faults_injected;
      sidecar.capture(r);
    }
    state.counters["seeds"] = static_cast<double>(bench_seeds().size());
    state.counters["converged"] = static_cast<double>(converged);
    state.counters["invariants_ok"] = static_cast<double>(invariants_ok);
    state.counters["faults_injected"] = static_cast<double>(faults);
  }
}

BENCHMARK(run_chaos_scenario)
    ->ArgNames({"scenario"})
    ->DenseRange(0, 6)  // the 7 standard scenarios, by index
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
