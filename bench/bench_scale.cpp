// C1 — city-scale memory engine (DESIGN.md §17).
//
// Boots a 4-level hierarchy (root → district → ward → leaf) with a
// fanout-10 tree of 1111 subnets and 10⁶ pre-funded accounts via static
// genesis-time construction (TreeSpec — no spawn protocol, no funding
// rounds), drives Zipf-skewed transfer traffic at the hottest leaves, and
// measures the deterministic memory footprint:
//
//   peak_bytes_per_node   max over nodes/samples of SubnetNode::mem_bytes()
//   bytes_per_account     peak aggregate node bytes / pre-funded accounts
//   interner_entries/bytes  process-wide SubnetId intern table footprint
//
// All byte numbers are logical sizes (DESIGN.md §17), never allocator
// capacities, so same-seed runs report identical values and the committed
// BENCH_scale.json baseline gates them via scripts/bench_diff.py. The
// fanout-4 row (85 subnets) is the sanitizer-friendly trim used by
// scripts/check.sh; the fanout-10 row is the headline city.
#include "bench_common.hpp"

#include "core/intern.hpp"

namespace hc::bench {
namespace {

constexpr sim::Duration kWindow = 2 * sim::kSecond;    // measured traffic
constexpr sim::Duration kSampleEvery = 250 * sim::kMillisecond;
constexpr std::size_t kZipfBase = 8;  // msgs/tick at rank 1, ∝ 1/rank after

struct CityShape {
  std::size_t fanout = 4;            // per level, 3 levels below root
  std::size_t accounts_per_leaf = 100;
  std::size_t hot_leaves = 16;       // Zipf head: leaves with keyed senders
  [[nodiscard]] std::size_t leaves() const {
    return fanout * fanout * fanout;
  }
  [[nodiscard]] std::size_t subnets() const {
    return 1 + fanout + fanout * fanout + leaves();
  }
  [[nodiscard]] std::size_t accounts() const {
    return leaves() * accounts_per_leaf;
  }
};

CityShape shape_for(std::size_t fanout) {
  CityShape s;
  s.fanout = fanout;
  if (fanout >= 10) {       // the headline city: 1111 subnets, 10⁶ accounts
    s.accounts_per_leaf = 1000;
    s.hot_leaves = 64;
  }
  return s;
}

core::SubnetParams city_params(const std::string& name) {
  core::SubnetParams p = bench_params();
  p.name = name;
  return p;
}

runtime::TreeSpec make_city(const CityShape& shape) {
  const consensus::EngineConfig engine = subnet_engine(200 * sim::kMillisecond);
  std::size_t rank = 0;  // leaf rank in preorder == traffic rank
  runtime::TreeSpec root;
  root.name = "root";
  root.params = city_params("root");
  root.engine = engine;
  for (std::size_t d = 0; d < shape.fanout; ++d) {
    runtime::TreeSpec district;
    district.name = "d" + std::to_string(d);
    district.params = city_params(district.name);
    district.engine = engine;
    for (std::size_t w = 0; w < shape.fanout; ++w) {
      runtime::TreeSpec ward;
      ward.name = district.name + "w" + std::to_string(w);
      ward.params = city_params(ward.name);
      ward.engine = engine;
      for (std::size_t l = 0; l < shape.fanout; ++l) {
        runtime::TreeSpec leaf;
        leaf.name = ward.name + "l" + std::to_string(l);
        leaf.params = city_params(leaf.name);
        leaf.engine = engine;
        leaf.accounts = shape.accounts_per_leaf;
        if (rank < shape.hot_leaves) leaf.hot_accounts = 1;
        ++rank;
        ward.children.push_back(std::move(leaf));
      }
      district.children.push_back(std::move(ward));
    }
    root.children.push_back(std::move(district));
  }
  return root;
}

/// One keyed sender per hot leaf, re-derived from the TreeSpec label and
/// pre-funded in genesis — traffic starts at sim-time zero, no funding
/// round-trips. Transfers spray the leaf's cold account mass.
struct HotSender {
  runtime::Subnet* leaf = nullptr;
  crypto::KeyPair key = crypto::KeyPair::from_label("unset");
  Address addr;
  std::uint64_t nonce = 0;
  std::size_t pumped = 0;

  void pump(std::size_t count, std::size_t cold_accounts) {
    auto& node = leaf->node(0);
    for (std::size_t i = 0; i < count; ++i) {
      chain::Message m;
      m.from = addr;
      m.to = Address::id(1000 + (pumped++ % cold_accounts));
      m.nonce = nonce++;
      m.value = TokenAmount::atto(1);
      m.gas_limit = 1u << 22;
      m.gas_price = TokenAmount::atto(1);
      node.post(0, [&node, key = key, m = std::move(m)]() mutable {
        (void)node.submit_message(chain::SignedMessage::sign(std::move(m),
                                                             key));
      });
    }
  }
};

struct ScaleRow {
  std::string label;
  std::uint64_t seed = 0;
  std::size_t subnets = 0;
  std::size_t nodes = 0;
  std::size_t accounts = 0;
  std::uint64_t committed = 0;
  std::size_t events = 0;
  std::size_t peak_bytes_per_node = 0;
  std::size_t peak_total_bytes = 0;
  std::size_t bytes_per_account = 0;
  std::size_t interner_entries = 0;
  std::size_t interner_bytes = 0;
};

/// Custom sidecar: the full 1111-subnet metrics export would be megabytes,
/// so BENCH_scale.json carries a compact per-run "scale" object plus the
/// two counters bench_diff.py's generic gates read (committed, events).
struct ScaleSidecar {
  std::vector<ScaleRow> rows;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  ~ScaleSidecar() {
    if (rows.empty()) return;
    std::string json = "{\n  \"bench\": \"scale\",\n  \"meta\": " +
                       bench_meta_json(start) + ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScaleRow& r = rows[i];
      json += "    {\"label\": \"" + obs::json_escape(r.label) +
              "\", \"seed\": " + std::to_string(r.seed) +
              ", \"metrics\": {\"counters\": "
              "{\"node_user_msgs_executed_total\": {\"\": " +
              std::to_string(r.committed) +
              "}, \"sim_events_run_total\": {\"\": " +
              std::to_string(r.events) +
              "}}}, \"scale\": {\"subnets\": " + std::to_string(r.subnets) +
              ", \"nodes\": " + std::to_string(r.nodes) +
              ", \"accounts\": " + std::to_string(r.accounts) +
              ", \"peak_bytes_per_node\": " +
              std::to_string(r.peak_bytes_per_node) +
              ", \"peak_total_bytes\": " +
              std::to_string(r.peak_total_bytes) +
              ", \"bytes_per_account\": " +
              std::to_string(r.bytes_per_account) +
              ", \"interner_entries\": " +
              std::to_string(r.interner_entries) +
              ", \"interner_bytes\": " + std::to_string(r.interner_bytes) +
              "}}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    (void)obs::write_text_file("BENCH_scale.json", json);
    // Profiler sidecars like every other bench (DESIGN.md §13) — the
    // compact metrics sidecar above replaces only the megabyte-scale
    // per-node metrics export, not the wall-clock attribution.
    const obs::ProfileReport report = obs::Profiler::instance().report();
    if (!report.empty()) {
      std::string prof = "{\n  \"bench\": \"scale\",\n  \"meta\": " +
                         bench_meta_json(start) +
                         ",\n  \"profile\": " + obs::profile_to_json(report) +
                         "\n}\n";
      (void)obs::write_text_file("BENCH_scale.profile.json", prof);
      (void)obs::write_text_file("BENCH_scale.folded",
                                 obs::profile_to_folded(report));
      std::fprintf(stderr, "\n[scale] wall-clock hotspots:\n%s",
                   obs::profile_top_table(report).c_str());
    }
  }
};
ScaleSidecar sidecar;

void run_city(benchmark::State& state) {
  const CityShape shape = shape_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    runtime::HierarchyConfig cfg = bench_config(/*seed=*/9000 + shape.fanout);
    // The memory engine under test: bounded per-node chain windows + the
    // opt-in mem gauges. The window comfortably exceeds replica lag (every
    // subnet has one validator) while flattening the per-node ceiling.
    cfg.chain_retention = {.max_items = 64, .max_bytes = 0};
    cfg.mem_metrics = true;
    runtime::Hierarchy h(cfg, make_city(shape));

    // Hot senders: leaf rank r (preorder) gets ~kZipfBase/(r+1) msgs/tick.
    std::vector<HotSender> hot;
    for (const auto& s : h.subnets()) {
      if (s->id.depth() != 3 || hot.size() >= shape.hot_leaves) continue;
      HotSender sender;
      sender.leaf = s.get();
      sender.key = crypto::KeyPair::from_label(s->params.name + "-hot-0");
      sender.addr = Address::key(sender.key.public_key().to_bytes());
      hot.push_back(std::move(sender));
    }

    std::size_t peak_node = 0;
    std::size_t peak_total = 0;
    std::size_t nodes = 0;
    const auto sample = [&] {
      std::size_t total = 0;
      nodes = 0;
      for (const auto& s : h.subnets()) {
        for (std::size_t i = 0; i < s->size(); ++i) {
          if (!s->alive(i)) continue;
          const std::size_t b = s->node(i).mem_bytes();
          peak_node = std::max(peak_node, b);
          total += b;
          ++nodes;
        }
      }
      peak_total = std::max(peak_total, total);
    };

    sample();  // genesis footprint
    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      for (std::size_t r = 0; r < hot.size(); ++r) {
        hot[r].pump(std::max<std::size_t>(1, kZipfBase / (r + 1)),
                    shape.accounts_per_leaf);
      }
      h.run_for(kSampleEvery);
      sample();
    }
    h.run_for(sim::kSecond);  // drain in-flight blocks + checkpoints
    sample();

    std::uint64_t committed = 0;
    for (const auto& s : h.subnets()) {
      committed += s->node(0).stats().user_msgs_executed;
    }
    const auto& interner = core::SubnetInterner::instance();

    ScaleRow row;
    row.label = "city/fanout=" + std::to_string(shape.fanout);
    row.seed = 9000 + shape.fanout;
    row.subnets = shape.subnets();
    row.nodes = nodes;
    row.accounts = shape.accounts();
    row.committed = committed;
    row.events = h.scheduler().events_run();
    row.peak_bytes_per_node = peak_node;
    row.peak_total_bytes = peak_total;
    row.bytes_per_account = peak_total / std::max<std::size_t>(1,
                                                              shape.accounts());
    row.interner_entries = interner.size();
    row.interner_bytes = interner.approx_bytes();
    sidecar.rows.push_back(row);

    state.counters["subnets"] = static_cast<double>(row.subnets);
    state.counters["accounts"] = static_cast<double>(row.accounts);
    state.counters["committed"] = static_cast<double>(row.committed);
    state.counters["peak_bytes_per_node"] =
        static_cast<double>(row.peak_bytes_per_node);
    state.counters["bytes_per_account"] =
        static_cast<double>(row.bytes_per_account);
    state.counters["interner_entries"] =
        static_cast<double>(row.interner_entries);
  }
}

BENCHMARK(run_city)
    ->ArgName("fanout")
    ->Arg(4)   // 85 subnets — the sanitizer/check.sh trim
    ->Arg(10)  // 1111 subnets, 10⁶ accounts — the headline city
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
