// E6 — §II firewall property: bounded impact of a compromised subnet.
//
// A fully Byzantine child subnet (its entire validator set colludes, so
// signature policies cannot help) forges checkpoints attempting to extract
// `claimed` tokens from the parent while its legitimate circulating supply
// is `supply`. The measured `extracted` amount must never exceed `supply` —
// the paper's bound: "the impact of a child subnet being compromised is
// limited to, at most, its circulating supply of the token".
//
// Also measures fraud-proof slashing: collateral burned when an
// equivocating checkpoint pair is submitted.
//
// Counters: supply, claimed, extracted, bound_holds (1/0), slashed.
#include "bench_common.hpp"
#include "../tests/harness.hpp"

namespace hc::bench {
namespace {

using testing::ChainWorld;
using testing::User;

struct FirewallWorld {
  ChainWorld world;
  User* validator;
  Address sa;
  core::SubnetId child;
  TokenAmount supply;

  explicit FirewallWorld(TokenAmount target_supply)
      : validator(&world.user("byz-val", TokenAmount::whole(100000))) {
    core::SubnetParams params;
    params.name = "byz";
    params.min_validator_stake = TokenAmount::whole(5);
    params.min_collateral = TokenAmount::whole(10);
    params.checkpoint_period = 10;
    params.checkpoint_policy =
        core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
    sa = world.deploy_sa(*validator, params);
    auto r = world.call(*validator, sa, actors::sa_method::kJoin,
                        encode(actors::JoinParams{validator->key.public_key()}),
                        TokenAmount::whole(10));
    child = core::SubnetId::root().child(sa);
    if (!r.ok()) return;
    // Honest user injects the circulating supply.
    if (!target_supply.is_zero()) {
      User& funder = world.user("funder", TokenAmount::whole(100000));
      actors::CrossParams p;
      p.dest = child;
      p.to = funder.addr;
      auto fr = world.call(funder, chain::kScaAddr,
                           actors::sca_method::kFund, encode(p),
                           target_supply);
      if (!fr.ok()) return;
    }
    supply = target_supply;
  }

  /// Byzantine withdrawal attempt: a validly signed checkpoint claiming
  /// `claim` tokens leave the subnet. Returns the amount that actually
  /// became spendable in the parent.
  TokenAmount attack(TokenAmount claim) {
    const Address thief =
        Address::key(crypto::KeyPair::from_label("thief").public_key()
                         .to_bytes());
    core::CrossMsgBatch batch;
    core::CrossMsg m;
    m.from_subnet = child;
    m.to_subnet = core::SubnetId::root();
    m.msg.from = Address::id(666);
    m.msg.to = thief;
    m.msg.value = claim;
    batch.msgs.push_back(std::move(m));

    core::SignedCheckpoint sc;
    sc.checkpoint.source = child;
    sc.checkpoint.epoch = next_epoch_;
    next_epoch_ += 10;
    sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("forged"));
    sc.checkpoint.prev = last_checkpoint_;
    core::CrossMsgMeta meta;
    meta.from = child;
    meta.to = core::SubnetId::root();
    meta.msgs_cid = batch.cid();
    meta.msg_count = 1;
    meta.value = claim;
    sc.checkpoint.cross_meta.push_back(meta);
    sc.add_signature(validator->key);

    auto submit = world.call(*validator, sa,
                             actors::sa_method::kSubmitCheckpoint, encode(sc),
                             TokenAmount());
    if (!submit.ok()) return TokenAmount();  // firewall rejected outright
    last_checkpoint_ = sc.checkpoint.cid();

    // Execute the adopted batch (what the parent consensus would do).
    const auto sca = world.sca_state();
    if (sca.pending_bottomup.empty()) return TokenAmount();
    actors::ApplyBottomUpParams apply{sca.pending_bottomup.back().nonce,
                                      batch};
    auto applied = world.implicit(chain::kScaAddr,
                                  actors::sca_method::kApplyBottomUp,
                                  encode(apply), TokenAmount());
    if (!applied.ok()) return TokenAmount();
    return world.balance(thief);
  }

 private:
  chain::Epoch next_epoch_ = 10;
  Cid last_checkpoint_;
};

// ChainWorld microbench (no Hierarchy): profile sidecar + hotspot table
// only, written by the exporter's flush at exit.
ObsExporter profile_sidecar("fig6_firewall");

void run_firewall(benchmark::State& state) {
  const auto supply = TokenAmount::whole(state.range(0));
  const auto claimed = TokenAmount::whole(state.range(1));
  for (auto _ : state) {
    FirewallWorld w(supply);
    const TokenAmount extracted = w.attack(claimed);
    state.counters["supply"] = static_cast<double>(supply.whole_part());
    state.counters["claimed"] = static_cast<double>(claimed.whole_part());
    state.counters["extracted"] =
        static_cast<double>(extracted.whole_part());
    state.counters["bound_holds"] = extracted <= supply ? 1 : 0;
  }
}

BENCHMARK(run_firewall)
    ->ArgNames({"supply", "claimed"})
    ->Args({0, 50})      // nothing injected: nothing extractable
    ->Args({50, 25})     // legitimate-looking partial withdrawal
    ->Args({50, 50})     // full supply drain (the bound itself)
    ->Args({50, 51})     // one token over: must be rejected
    ->Args({50, 500})    // 10x overdraw
    ->Args({50, 5000})   // 100x overdraw
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void run_slashing(benchmark::State& state) {
  for (auto _ : state) {
    ChainWorld world;
    User& v0 = world.user("sl-v0", TokenAmount::whole(1000));
    User& v1 = world.user("sl-v1", TokenAmount::whole(1000));
    core::SubnetParams params;
    params.min_validator_stake = TokenAmount::whole(5);
    params.min_collateral = TokenAmount::whole(10);
    params.checkpoint_period = 10;
    params.checkpoint_policy =
        core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
    const Address sa = world.deploy_sa(v0, params);
    for (User* v : {&v0, &v1}) {
      (void)world.call(*v, sa, actors::sa_method::kJoin,
                       encode(actors::JoinParams{v->key.public_key()}),
                       TokenAmount::whole(10));
    }
    const core::SubnetId child = core::SubnetId::root().child(sa);

    // v0 equivocates: two checkpoints for the same epoch.
    auto mk = [&](const char* tag) {
      core::SignedCheckpoint sc;
      sc.checkpoint.source = child;
      sc.checkpoint.epoch = 10;
      sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes(tag));
      sc.add_signature(v0.key);
      return sc;
    };
    core::FraudProof proof{mk("fork-a"), mk("fork-b")};

    const TokenAmount collateral_before =
        world.sca_state().subnets.begin()->second.collateral;
    User& reporter = world.user("reporter", TokenAmount::whole(100));
    auto r = world.call(reporter, chain::kScaAddr,
                        actors::sca_method::kSubmitFraudProof, encode(proof),
                        TokenAmount());
    const TokenAmount collateral_after =
        world.sca_state().subnets.begin()->second.collateral;

    state.counters["fraud_accepted"] = r.ok() ? 1 : 0;
    state.counters["collateral_before"] =
        static_cast<double>(collateral_before.whole_part());
    state.counters["slashed"] = static_cast<double>(
        (collateral_before - collateral_after).whole_part());
    state.counters["gas_used"] = static_cast<double>(r.gas_used);
  }
}

BENCHMARK(run_slashing)->Iterations(1)->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
