// E3 — Fig. 3: cross-net message commitment latency.
//
// End-to-end *simulated* latency (submit -> applied at destination) of:
//   - top-down messages to depth 1..3,
//   - bottom-up messages from depth 1..3 (checkpoint-carried),
//   - a path message between depth-1 siblings,
// plus a checkpoint-period sweep showing the period's dominant effect on
// bottom-up latency (messages wait for the next cut, Fig. 2).
//
// Counters: latency_sim_ms (end-to-end), depth, period.
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("fig3_crossmsg");
  return e;
}

struct Chainline {
  runtime::Hierarchy h;
  std::vector<runtime::Subnet*> line;  // line[0] = depth-1 subnet, ...
  runtime::User alice;

  explicit Chainline(std::uint64_t seed, int depth, std::uint32_t period)
      : h(bench_config(seed)) {
    runtime::Subnet* parent = &h.root();
    for (int d = 0; d < depth; ++d) {
      auto s = h.spawn_subnet(*parent, "lvl" + std::to_string(d),
                              bench_params(core::ConsensusType::kPoaRoundRobin,
                                           period),
                              3, TokenAmount::whole(5), subnet_engine());
      if (!s.ok()) return;
      line.push_back(s.value());
      parent = s.value();
    }
    auto u = h.make_user("alice", TokenAmount::whole(10000));
    if (u.ok()) alice = u.value();
  }

  [[nodiscard]] bool ok() const { return !line.empty(); }
  [[nodiscard]] runtime::Subnet& leaf() { return *line.back(); }
};

void run_topdown(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Chainline world(2000 + static_cast<std::uint64_t>(depth), depth, 5);
    if (!world.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    const sim::Time t0 = world.h.scheduler().now();
    auto r = world.h.send_cross(world.h.root(), world.alice,
                                world.leaf().id, world.alice.addr,
                                TokenAmount::whole(10));
    if (!r.ok() || !r.value().ok()) {
      state.SkipWithError("send failed");
      return;
    }
    const bool landed = world.h.run_until(
        [&] {
          return world.leaf().node(0).balance(world.alice.addr) ==
                 TokenAmount::whole(10);
        },
        120 * sim::kSecond);
    if (!landed) {
      state.SkipWithError("top-down did not land");
      return;
    }
    state.counters["latency_sim_ms"] =
        static_cast<double>(world.h.scheduler().now() - t0) / 1000.0;
    state.counters["depth"] = depth;
    exporter().capture(world.h, "topdown/depth=" + std::to_string(depth),
                       2000 + static_cast<std::uint64_t>(depth));
  }
}

BENCHMARK(run_topdown)->ArgName("depth")->Arg(1)->Arg(2)->Arg(3)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void run_bottomup(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto period = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    Chainline world(
        3000 + static_cast<std::uint64_t>(depth) * 100 + period, depth,
        period);
    if (!world.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    // Fund the leaf first.
    auto f = world.h.send_cross(world.h.root(), world.alice,
                                world.leaf().id, world.alice.addr,
                                TokenAmount::whole(50));
    if (!f.ok() || !f.value().ok() ||
        !world.h.run_until(
            [&] {
              return world.leaf().node(0).balance(world.alice.addr) ==
                     TokenAmount::whole(50);
            },
            120 * sim::kSecond)) {
      state.SkipWithError("funding failed");
      return;
    }

    runtime::User sink{crypto::KeyPair::from_label("sink"),
                       Address::key(crypto::KeyPair::from_label("sink")
                                        .public_key()
                                        .to_bytes())};
    const sim::Time t0 = world.h.scheduler().now();
    auto r = world.h.send_cross(world.leaf(), world.alice,
                                core::SubnetId::root(), sink.addr,
                                TokenAmount::whole(5));
    if (!r.ok() || !r.value().ok()) {
      state.SkipWithError("release failed");
      return;
    }
    const bool landed = world.h.run_until(
        [&] {
          return world.h.root().node(0).balance(sink.addr) ==
                 TokenAmount::whole(5);
        },
        600 * sim::kSecond);
    if (!landed) {
      state.SkipWithError("bottom-up did not land");
      return;
    }
    state.counters["latency_sim_ms"] =
        static_cast<double>(world.h.scheduler().now() - t0) / 1000.0;
    state.counters["depth"] = depth;
    state.counters["period"] = period;
    exporter().capture(world.h,
                       "bottomup/depth=" + std::to_string(depth) +
                           ",period=" + std::to_string(period),
                       3000 + static_cast<std::uint64_t>(depth) * 100 +
                           period);
  }
}

BENCHMARK(run_bottomup)
    ->ArgNames({"depth", "period"})
    ->Args({1, 5})
    ->Args({2, 5})
    ->Args({3, 5})
    // period sweep at depth 1: bottom-up latency ~ period * block_time
    ->Args({1, 10})
    ->Args({1, 20})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void run_path(benchmark::State& state) {
  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(4000));
    auto a = h.spawn_subnet(h.root(), "A", bench_params(), 3,
                            TokenAmount::whole(5), subnet_engine());
    auto b = h.spawn_subnet(h.root(), "B", bench_params(), 3,
                            TokenAmount::whole(5), subnet_engine());
    if (!a.ok() || !b.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    auto alice = h.make_user("alice", TokenAmount::whole(1000));
    if (!alice.ok()) {
      state.SkipWithError("user failed");
      return;
    }
    auto f = h.send_cross(h.root(), alice.value(), a.value()->id,
                          alice.value().addr, TokenAmount::whole(50));
    if (!f.ok() ||
        !h.run_until(
            [&] {
              return a.value()->node(0).balance(alice.value().addr) ==
                     TokenAmount::whole(50);
            },
            120 * sim::kSecond)) {
      state.SkipWithError("funding failed");
      return;
    }
    runtime::User sink{crypto::KeyPair::from_label("psink"),
                       Address::key(crypto::KeyPair::from_label("psink")
                                        .public_key()
                                        .to_bytes())};
    const sim::Time t0 = h.scheduler().now();
    auto r = h.send_cross(*a.value(), alice.value(), b.value()->id,
                          sink.addr, TokenAmount::whole(5));
    if (!r.ok() || !r.value().ok()) {
      state.SkipWithError("path send failed");
      return;
    }
    const bool landed = h.run_until(
        [&] {
          return b.value()->node(0).balance(sink.addr) ==
                 TokenAmount::whole(5);
        },
        600 * sim::kSecond);
    if (!landed) {
      state.SkipWithError("path msg did not land");
      return;
    }
    state.counters["latency_sim_ms"] =
        static_cast<double>(h.scheduler().now() - t0) / 1000.0;
    exporter().capture(h, "path/A-to-B", 4000);
  }
}

BENCHMARK(run_path)->Iterations(1)->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
