// S1 — cost of state commitment (DESIGN.md §12).
//
// Two questions, answered on synthetic trees of N actors:
//   1. What does flush() cost as a function of actor count and dirty
//      fraction — incremental (dirty-tracked, cached Merkle levels) versus
//      the seed's from-scratch rebuild (re-encode + rehash every leaf)?
//      Acceptance floor: >= 5x at N=10k, 1% dirty.
//   2. What does per-message rollback cost — journal undo-log revert versus
//      the seed's deep-copy snapshot/revert_to?
//
// Sidecars: BENCH_state.metrics.json carries the commitment counters
// (state_leaf_rehashes_total, state_flush_cache_hits_total) and a
// state_flush_us histogram per case. Unlike the protocol benches, the
// histogram buckets hold *wall-clock* microseconds — this binary measures
// real hashing work, not simulated time — so the sidecar is not
// byte-deterministic across machines.
#include "bench_common.hpp"

#include <chrono>

#include "chain/state.hpp"

namespace hc::bench {
namespace {

using chain::ActorEntry;
using chain::StateTree;

/// Wall-clock bucket edges for flush latencies: 1µs .. 100ms.
const std::vector<std::int64_t>& flush_buckets_us() {
  static const std::vector<std::int64_t> b = {
      1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000,
      50000, 100000};
  return b;
}

/// Owns the registry shared by every case in this binary and flushes it to
/// the sidecar files at exit (member, not function-local static: the
/// registry must outlive the destructor that reads it).
struct StateSidecar {
  obs::MetricsRegistry reg;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  ~StateSidecar() {
    const std::string json =
        "{\n  \"bench\": \"state\",\n  \"meta\": " + bench_meta_json(start) +
        ",\n  \"runs\": [\n    "
        "{\"label\": \"all\", \"seed\": 0, \"metrics\": " +
        obs::metrics_to_json(reg) + "}\n  ]\n}\n";
    (void)obs::write_text_file("BENCH_state.metrics.json", json);
    (void)obs::write_text_file("BENCH_state.prom",
                               obs::metrics_to_prometheus(reg));
  }
};
StateSidecar sidecar;

// Profile sidecar + hotspot table (state/flush phase) at exit.
ObsExporter profile_sidecar("state");

obs::MetricsRegistry& registry() { return sidecar.reg; }

/// N accounts with distinct balances/nonces and a 32-byte state blob, so
/// leaf encoding cost is representative.
StateTree build_tree(std::size_t actors) {
  StateTree t;
  for (std::size_t i = 0; i < actors; ++i) {
    ActorEntry e;
    e.code = chain::kCodeAccount;
    e.balance = TokenAmount::atto(static_cast<std::int64_t>(1000 + i));
    e.nonce = i % 7;
    e.state = Bytes(32, static_cast<std::uint8_t>(i));
    t.set(Address::id(i), e);
  }
  return t;
}

/// Touch `k` actors spread evenly across the tree (pure balance mutation:
/// content-dirty, no membership change).
void mutate(StateTree& t, std::size_t actors, std::size_t k,
            std::uint64_t round) {
  const std::size_t stride = actors / k;
  for (std::size_t i = 0; i < k; ++i) {
    t.get_or_create(Address::id(i * stride + round % stride)).balance +=
        TokenAmount::atto(1);
  }
}

std::size_t dirty_leaves(std::size_t actors, std::int64_t per_mil) {
  const auto k = static_cast<std::size_t>(
      (static_cast<std::int64_t>(actors) * per_mil) / 1000);
  return k == 0 ? 1 : k;
}

std::string case_label(benchmark::State& state) {
  return "actors=" + std::to_string(state.range(0)) + ",dirty_pm=" +
         std::to_string(state.range(1));
}

/// The seed's commitment algorithm: re-encode every leaf in address order
/// and rebuild the whole Merkle tree, no cache anywhere.
Cid flush_from_scratch(const StateTree& t) {
  std::vector<Bytes> leaves;
  leaves.reserve(t.actor_count());
  for (const auto& [addr, entry] : t) {
    leaves.push_back(StateTree::leaf_bytes(addr, entry));
  }
  return Cid(CidCodec::kStateRoot, crypto::MerkleTree::root_of(leaves));
}

void state_flush_incremental(benchmark::State& state) {
  const auto actors = static_cast<std::size_t>(state.range(0));
  const std::size_t k = dirty_leaves(actors, state.range(1));
  state.SetLabel(case_label(state));
  const obs::Labels labels{{"case", case_label(state)}};
  auto& rehashes = registry().counter("state_leaf_rehashes_total", labels);
  auto& hits = registry().counter("state_flush_cache_hits_total", labels);
  auto& flush_us =
      registry().histogram("state_flush_us", labels, flush_buckets_us());

  StateTree t = build_tree(actors);
  (void)t.flush();  // warm: the cache starts clean, as after a block commit
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mutate(t, actors, k, round++);
    state.ResumeTiming();
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(t.flush());
    const auto t1 = std::chrono::steady_clock::now();
    flush_us.observe(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
  }
  const auto& s = t.commit_stats();
  rehashes.inc(s.leaf_rehashes);
  hits.inc(s.flush_cache_hits);
  state.counters["dirty_leaves"] = static_cast<double>(k);
  state.counters["leaf_rehashes_per_flush"] =
      benchmark::Counter(static_cast<double>(s.leaf_rehashes),
                         benchmark::Counter::kAvgIterations);
  state.counters["node_hashes_per_flush"] =
      benchmark::Counter(static_cast<double>(s.node_hashes),
                         benchmark::Counter::kAvgIterations);
}

void state_flush_scratch(benchmark::State& state) {
  const auto actors = static_cast<std::size_t>(state.range(0));
  const std::size_t k = dirty_leaves(actors, state.range(1));
  state.SetLabel(case_label(state));
  StateTree t = build_tree(actors);
  (void)t.flush();
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mutate(t, actors, k, round++);
    (void)t.flush();  // keep the incremental cache warm outside the clock
    state.ResumeTiming();
    benchmark::DoNotOptimize(flush_from_scratch(t));
  }
  state.counters["dirty_leaves"] = static_cast<double>(k);
}

void state_revert_journal(benchmark::State& state) {
  const auto actors = static_cast<std::size_t>(state.range(0));
  const std::size_t k = dirty_leaves(actors, state.range(1));
  state.SetLabel(case_label(state));
  StateTree t = build_tree(actors);
  (void)t.flush();
  std::uint64_t round = 0;
  for (auto _ : state) {
    t.journal_reset();
    const StateTree::JournalMark mark = t.journal_mark();
    mutate(t, actors, k, round++);
    t.journal_revert(mark);
    benchmark::DoNotOptimize(t.journal_depth());
  }
  state.counters["dirty_leaves"] = static_cast<double>(k);
}

void state_revert_snapshot(benchmark::State& state) {
  const auto actors = static_cast<std::size_t>(state.range(0));
  const std::size_t k = dirty_leaves(actors, state.range(1));
  state.SetLabel(case_label(state));
  StateTree t = build_tree(actors);
  (void)t.flush();
  std::uint64_t round = 0;
  for (auto _ : state) {
    StateTree snap = t.snapshot();  // the seed's per-message rollback path
    mutate(t, actors, k, round++);
    t.revert_to(std::move(snap));
    benchmark::DoNotOptimize(t.actor_count());
  }
  state.counters["dirty_leaves"] = static_cast<double>(k);
}

// dirty_pm is the dirty fraction in per-mil: 1 = 0.1%, 10 = 1%, 100 = 10%.
#define HC_STATE_ARGS                                     \
  ArgNames({"actors", "dirty_pm"})                        \
      ->Args({1000, 10})                                  \
      ->Args({10000, 1})                                  \
      ->Args({10000, 10})                                 \
      ->Args({10000, 100})                                \
      ->Unit(benchmark::kMicrosecond)

BENCHMARK(state_flush_incremental)->HC_STATE_ARGS;
BENCHMARK(state_flush_scratch)->HC_STATE_ARGS;
BENCHMARK(state_revert_journal)->HC_STATE_ARGS;
BENCHMARK(state_revert_snapshot)->HC_STATE_ARGS;

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
