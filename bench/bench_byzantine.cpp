// E8 — adversary tolerance: the Byzantine sweep as a benchmark.
//
// Each benchmark arg is one adversary scenario (checkpoint equivocation,
// forged CrossMsgMeta value, collateral collapse with subnet deactivation,
// checkpoint withholding, stale re-submission, depth-2 equivocation)
// executed by the ChaosRunner over a fixed seed set on a three-level
// hierarchy. Counters report, per scenario: how many seeds converged, how
// many passed the invariant suite plus the Byzantine postconditions
// (exactly the guilty slashed, honest collateral untouched), and how many
// slashes/deactivations the scenario expects per run.
//
// Sidecar: BENCH_byzantine.metrics.json accumulates the per-run metric
// snapshots — fraud_detection_latency_us histograms, slash and
// deactivation counters, byzantine action counters — for offline analysis
// of detection latency distributions.
#include "bench_common.hpp"

#include "chaos/runner.hpp"

namespace hc::bench {
namespace {

const std::vector<std::uint64_t>& bench_seeds() {
  static const std::vector<std::uint64_t> seeds = {7, 21, 1234};
  return seeds;
}

chaos::RunnerConfig byz_config() {
  chaos::RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 1;  // three-level branch so the depth-2 scenario runs
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 10 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  return cfg;
}

/// Accumulates per-run snapshots; written when the binary exits.
class ByzantineSidecar {
 public:
  void capture(const chaos::RunResult& r) {
    runs_.push_back({r.scenario + "/seed-" + std::to_string(r.seed), r.seed,
                     r.metrics_json});
  }

  ~ByzantineSidecar() {
    if (runs_.empty()) return;
    std::string json = "{\n  \"bench\": \"byzantine\",\n  \"meta\": " +
                       bench_meta_json(start_) + ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      json += "    {\"label\": \"" + obs::json_escape(runs_[i].label) +
              "\", \"seed\": " + std::to_string(runs_[i].seed) +
              ", \"metrics\": " + runs_[i].metrics + "}";
      json += (i + 1 < runs_.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    (void)obs::write_text_file("BENCH_byzantine.metrics.json", json);
  }

 private:
  struct Run {
    std::string label;
    std::uint64_t seed = 0;
    std::string metrics;
  };
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::vector<Run> runs_;
};

ByzantineSidecar sidecar;

void run_byzantine_scenario(benchmark::State& state) {
  const auto scenarios = chaos::ChaosRunner::byzantine_scenarios();
  const auto& scenario =
      scenarios.at(static_cast<std::size_t>(state.range(0)));
  state.SetLabel(scenario.name);
  const std::size_t guilty =
      scenario.byzantine ? scenario.byzantine->guilty.size() : 0;
  const std::size_t deactivated =
      scenario.byzantine ? scenario.byzantine->deactivated.size() : 0;

  for (auto _ : state) {
    chaos::ChaosRunner runner(byz_config());
    std::size_t converged = 0;
    std::size_t ok = 0;
    for (const std::uint64_t seed : bench_seeds()) {
      const chaos::RunResult r = runner.run(scenario, seed);
      converged += r.converged ? 1 : 0;
      ok += r.report.ok() ? 1 : 0;
      sidecar.capture(r);
    }
    state.counters["seeds"] = static_cast<double>(bench_seeds().size());
    state.counters["converged"] = static_cast<double>(converged);
    state.counters["invariants_ok"] = static_cast<double>(ok);
    state.counters["slashed_per_run"] = static_cast<double>(guilty);
    state.counters["deactivated_per_run"] = static_cast<double>(deactivated);
  }
}

BENCHMARK(run_byzantine_scenario)
    ->ArgNames({"scenario"})
    ->DenseRange(0, 5)  // the 6 adversary scenarios, by index
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
