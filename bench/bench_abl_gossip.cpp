// Ablation — gossip mesh parameters of the network substrate.
//
// The simulator replaces libp2p gossipsub (DESIGN.md §2); this ablation
// validates that the replacement reproduces gossip's characteristic
// trade-off: mesh degree D trades redundant traffic for propagation speed
// and loss-resilience. Measured: full-coverage delivery latency of one
// published message across N subscribers, messages sent, duplicate rate.
#include "bench_common.hpp"

namespace hc::bench {
namespace {

// Raw-Network ablation (no Hierarchy): profile sidecar + hotspot table
// only, covering the net/deliver phase.
ObsExporter profile_sidecar("abl_gossip");

void run_gossip(benchmark::State& state) {
  const auto degree = static_cast<std::size_t>(state.range(0));
  const int subscribers = static_cast<int>(state.range(1));
  const double loss = static_cast<double>(state.range(2)) / 100.0;

  for (auto _ : state) {
    sim::Scheduler sched;
    net::GossipConfig gcfg;
    gcfg.mesh_degree = degree;
    net::Network net(sched,
                     sim::LatencyModel(20 * sim::kMillisecond,
                                       10 * sim::kMillisecond),
                     /*seed=*/degree * 1000 + static_cast<std::uint64_t>(subscribers), gcfg);
    net.set_drop_rate(loss);

    std::vector<net::NodeId> ids;
    int delivered = 0;
    sim::Time last_delivery = 0;
    for (int i = 0; i < subscribers; ++i) {
      ids.push_back(net.add_node());
      net.subscribe(ids.back(), "abl");
      net.set_topic_handler(ids.back(),
                            [&](net::NodeId, const std::string&,
                                const net::Envelope&) {
                              ++delivered;
                              last_delivery = sched.now();
                            });
    }
    net.publish(ids[0], "abl", to_bytes("payload"));
    sched.run_until(30 * sim::kSecond);

    state.counters["coverage_pct"] =
        100.0 * delivered / (subscribers - 1);
    state.counters["full_latency_ms"] =
        static_cast<double>(last_delivery) / 1000.0;
    state.counters["msgs_sent"] =
        static_cast<double>(net.stats().messages_sent);
    state.counters["duplicates"] =
        static_cast<double>(net.stats().gossip_duplicates);
    state.counters["degree"] = static_cast<double>(degree);
    state.counters["loss_pct"] = loss * 100;
  }
}

BENCHMARK(run_gossip)
    ->ArgNames({"degree", "nodes", "losspct"})
    ->Args({2, 64, 0})
    ->Args({4, 64, 0})
    ->Args({6, 64, 0})
    ->Args({8, 64, 0})
    ->Args({6, 16, 0})
    ->Args({6, 256, 0})
    // loss resilience: low degree loses coverage, high degree keeps it
    ->Args({2, 64, 20})
    ->Args({6, 64, 20})
    ->Args({8, 64, 20})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
