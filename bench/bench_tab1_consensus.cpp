// E7 — §II/§VI consensus plurality: per-subnet engine comparison.
//
// One chain (the rootnet) runs each of the four engines at the same block
// time with a saturating transfer load. Reported per engine and validator
// count:
//   tps              committed user tx per simulated second
//   blocks_per_s     commit cadence
//   finality_sim_ms  time to finality: (finality_depth + 1) * block interval
//   net_msgs_per_blk consensus message overhead (network sends per block)
//
// BFT engines pay votes per block but finalize instantly; the lottery pays
// nothing extra but needs confirmation depth — exactly the trade the paper
// lets every subnet make for itself.
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("tab1_consensus");
  return e;
}

constexpr sim::Duration kWindow = 10 * sim::kSecond;

void run_engine(benchmark::State& state) {
  const auto type = static_cast<core::ConsensusType>(state.range(0));
  const auto n_validators = static_cast<std::size_t>(state.range(1));

  for (auto _ : state) {
    runtime::HierarchyConfig cfg = bench_config(
        7000 + state.range(0) * 100 + state.range(1), type, n_validators);
    runtime::Hierarchy h(cfg);

    LoadGenerator load(h.root(), 2, "eng" + std::to_string(state.range(0)) +
                                       "n" + std::to_string(n_validators));
    if (!fund_in_subnet(h, h.root(), load.addresses(),
                        TokenAmount::whole(1000))) {
      state.SkipWithError("funding failed");
      return;
    }

    const auto& node = h.root().node(0);
    const std::uint64_t blocks_before = node.stats().blocks_committed;
    const std::uint64_t txs_before = node.stats().user_msgs_executed;
    h.network().reset_stats();

    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      load.pump(30);
      h.run_for(100 * sim::kMillisecond);
    }
    h.run_for(sim::kSecond);

    const double secs =
        static_cast<double>(kWindow) / static_cast<double>(sim::kSecond);
    const double blocks = static_cast<double>(node.stats().blocks_committed -
                                              blocks_before);
    const double txs =
        static_cast<double>(node.stats().user_msgs_executed - txs_before);
    // Finality: engines with instant finality (depth 0) finalize at commit;
    // probabilistic engines wait finality_depth extra blocks.
    int depth = 0;
    if (type == core::ConsensusType::kPowerLottery) depth = 5;
    const double interval_ms =
        blocks > 0 ? (secs * 1000.0) / blocks : 1e9;

    state.counters["tps"] = txs / secs;
    state.counters["blocks_per_s"] = blocks / secs;
    state.counters["finality_sim_ms"] = (depth + 1) * interval_ms;
    state.counters["net_msgs_per_blk"] =
        blocks > 0 ? static_cast<double>(h.network().stats().messages_sent) /
                         blocks
                   : 0;
    state.counters["validators"] = static_cast<double>(n_validators);
    exporter().capture(
        h,
        "engine=" + std::to_string(state.range(0)) +
            "/n=" + std::to_string(n_validators),
        static_cast<std::uint64_t>(7000 + state.range(0) * 100 +
                                   state.range(1)));
  }
}

BENCHMARK(run_engine)
    ->ArgNames({"engine", "n"})
    ->Args({0, 4})   // PoA
    ->Args({0, 16})
    ->Args({1, 4})   // power lottery
    ->Args({1, 16})
    ->Args({2, 4})   // Tendermint
    ->Args({2, 16})
    ->Args({3, 4})   // RRBFT
    ->Args({3, 16})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Liveness under crash faults: f validators down, measure cadence loss.
void run_engine_faulty(benchmark::State& state) {
  const auto type = static_cast<core::ConsensusType>(state.range(0));
  constexpr std::size_t kN = 4;  // f = 1

  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(7500 + state.range(0), type, kN));
    // Crash one validator (not node 0: the API endpoint stays up).
    h.root().node(kN - 1).stop();
    h.network().set_node_down(h.root().node(kN - 1).net_id(), true);

    const auto& node = h.root().node(0);
    const std::uint64_t blocks_before = node.stats().blocks_committed;
    h.run_for(kWindow);
    const double blocks = static_cast<double>(node.stats().blocks_committed -
                                              blocks_before);
    const double secs =
        static_cast<double>(kWindow) / static_cast<double>(sim::kSecond);
    state.counters["blocks_per_s_faulty"] = blocks / secs;
  }
}

BENCHMARK(run_engine_faulty)
    ->ArgName("engine")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
