// Shared builders and load generators for the benchmark harness.
//
// Every bench binary regenerates one figure/table of the paper (see
// DESIGN.md §4 and EXPERIMENTS.md). Benchmarks measure *simulated-time*
// protocol metrics (throughput in committed tx per simulated second,
// latencies in simulated milliseconds); google-benchmark's wall-clock
// numbers only reflect how long the simulation took to run.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "actors/methods.hpp"
#include "actors/basic.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "runtime/atomic.hpp"
#include "runtime/hierarchy.hpp"

/// Short git SHA baked in by bench/CMakeLists.txt; "unknown" outside git.
#ifndef HC_GIT_SHA
#define HC_GIT_SHA "unknown"
#endif

namespace hc::bench {

using namespace hc;  // NOLINT: bench binaries are leaf translation units

/// Worker threads for every Hierarchy this binary builds, set by the
/// `--threads N` command-line flag (1 = sequential). Determinism (§11)
/// guarantees the protocol metrics are identical at any value; only the
/// wall-clock changes.
inline std::size_t& bench_threads() {
  static std::size_t n = 1;
  return n;
}

/// Strip `--threads N` / `--threads=N` from argv before google-benchmark
/// parses the remaining flags.
inline void consume_threads_flag(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      bench_threads() =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      bench_threads() = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (bench_threads() == 0) bench_threads() = 1;
}

/// Drop-in replacement for BENCHMARK_MAIN() that understands --threads.
#define HC_BENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                     \
    ::hc::bench::consume_threads_flag(argc, argv);                      \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

inline core::SubnetParams bench_params(
    core::ConsensusType consensus = core::ConsensusType::kPoaRoundRobin,
    std::uint32_t period = 5, std::uint32_t threshold = 1) {
  core::SubnetParams p;
  p.name = "bench";
  p.consensus = consensus;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = period;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, threshold};
  return p;
}

inline runtime::HierarchyConfig bench_config(
    std::uint64_t seed,
    core::ConsensusType root_consensus = core::ConsensusType::kPoaRoundRobin,
    std::size_t root_validators = 3,
    sim::Duration root_block_time = 100 * sim::kMillisecond) {
  runtime::HierarchyConfig cfg;
  cfg.seed = seed;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = bench_params(root_consensus);
  cfg.root_validators = root_validators;
  cfg.root_engine.block_time = root_block_time;
  cfg.root_engine.timeout_base = 4 * root_block_time;
  cfg.threads = bench_threads();
  return cfg;
}

inline consensus::EngineConfig subnet_engine(
    sim::Duration block_time = 100 * sim::kMillisecond) {
  consensus::EngineConfig e;
  e.block_time = block_time;
  e.timeout_base = 4 * block_time;
  return e;
}

/// Saturating transfer load on one subnet: a pool of self-signing users
/// paying each other round-robin. Nonces are tracked locally so messages
/// can be pipelined beyond the chain's confirmation latency.
///
/// Admission control (DESIGN.md §14): a submit refused with kOverloaded is
/// retried in-lane with exponential backoff (base·2^attempt, no RNG, so
/// schedules stay byte-identical at any thread count). The already-signed
/// message is resubmitted as-is — nonces are consumed at signing time, so
/// dropping it would wedge every later nonce of that sender.
class LoadGenerator {
 public:
  LoadGenerator(runtime::Subnet& subnet, std::size_t n_users,
                const std::string& label)
      : subnet_(subnet) {
    for (std::size_t i = 0; i < n_users; ++i) {
      keys_.push_back(crypto::KeyPair::from_label(label + "-load-" +
                                                  std::to_string(i)));
      addrs_.push_back(Address::key(keys_.back().public_key().to_bytes()));
      nonces_.push_back(0);
    }
  }

  /// Addresses that must be pre-funded inside the subnet.
  [[nodiscard]] const std::vector<Address>& addresses() const {
    return addrs_;
  }

  /// Submit `count` transfers (spread over the users). The sign + submit
  /// runs inside the subnet's scheduler lane (SubnetNode::post), not on the
  /// driver thread: client-side crypto is per-subnet work and must scale
  /// with the subnets under --threads, exactly like validation does.
  void pump(std::size_t count) {
    auto& node = subnet_.node(0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t u = next_user_++ % keys_.size();
      chain::Message m;
      m.from = addrs_[u];
      m.to = addrs_[(u + 1) % addrs_.size()];
      m.nonce = nonces_[u]++;
      m.value = TokenAmount::atto(1);
      m.gas_limit = 1u << 22;
      m.gas_price = TokenAmount::atto(1);
      node.post(0, [this, &node, key = keys_[u], m = std::move(m)]() mutable {
        submit_retry(node, chain::SignedMessage::sign(std::move(m), key), 0);
      });
    }
  }

  [[nodiscard]] std::size_t submitted() const { return next_user_; }
  /// Submissions re-posted after a kOverloaded refusal.
  [[nodiscard]] std::uint64_t retried() const {
    return retried_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr sim::Duration kRetryBase = 20 * sim::kMillisecond;
  static constexpr std::uint32_t kMaxBackoffShift = 6;  // cap: base * 64

  /// Runs in the node's lane. Only kOverloaded triggers a retry: other
  /// failures (bad signature, duplicate) are permanent. Retries never give
  /// up — a client abandoning a signed nonce would wedge every later nonce
  /// of that sender — but the delay cap keeps the retry traffic polite.
  void submit_retry(runtime::SubnetNode& node, chain::SignedMessage msg,
                    std::uint32_t attempt) {
    const Status st = node.submit_message(msg);
    if (st.ok() || st.error().code() != Errc::kOverloaded) return;
    retried_.fetch_add(1, std::memory_order_relaxed);
    const sim::Duration delay = kRetryBase
                                << std::min(attempt, kMaxBackoffShift);
    node.post(delay, [this, &node, msg = std::move(msg), attempt]() mutable {
      submit_retry(node, std::move(msg), attempt + 1);
    });
  }

  runtime::Subnet& subnet_;
  std::vector<crypto::KeyPair> keys_;
  std::vector<Address> addrs_;
  std::vector<std::uint64_t> nonces_;
  std::size_t next_user_ = 0;
  std::atomic<std::uint64_t> retried_{0};
};

/// Fund a list of addresses inside `subnet` via top-down cross-msgs.
inline bool fund_in_subnet(runtime::Hierarchy& h, runtime::Subnet& subnet,
                           const std::vector<Address>& addrs,
                           TokenAmount each) {
  auto funder = h.make_user("bench-funder",
                            each * (addrs.size() + 1) + TokenAmount::whole(10));
  if (!funder.ok()) return false;
  for (const auto& a : addrs) {
    if (subnet.id.is_root()) {
      auto r = h.call(h.root(), funder.value(), a, 0, {}, each);
      if (!r.ok() || !r.value().ok()) return false;
    } else {
      auto r = h.send_cross(h.root(), funder.value(), subnet.id, a, each);
      if (!r.ok() || !r.value().ok()) return false;
    }
  }
  return h.run_until(
      [&] {
        for (const auto& a : addrs) {
          if (subnet.node(0).balance(a) < each) return false;
        }
        return true;
      },
      120 * sim::kSecond);
}

/// Silence logs for the whole binary.
struct QuietLogs {
  QuietLogs() { Log::set_level(LogLevel::kOff); }
};

/// Common sidecar meta block (schema 2): host_cpus, worker threads, git
/// SHA and wall-clock runtime since `start`. Shared by ObsExporter and the
/// custom sidecars (bench_state, bench_chaos, bench_byzantine) so every
/// BENCH_*.json records the same environment fields.
inline std::string bench_meta_json(
    std::chrono::steady_clock::time_point start) {
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  char wall_buf[32];
  std::snprintf(wall_buf, sizeof(wall_buf), "%.3f", wall);
  return std::string("{\"schema\": 2, \"host_cpus\": ") +
         std::to_string(std::thread::hardware_concurrency()) +
         ", \"threads\": " + std::to_string(bench_threads()) +
         ", \"git_sha\": \"" + obs::json_escape(HC_GIT_SHA) +
         "\", \"wall_seconds\": " + wall_buf + "}";
}

/// Collects each run's observability state and writes sidecar files next to
/// the google-benchmark output when the binary exits:
///   BENCH_<name>.metrics.json  — labeled per-run metric snapshots
///                                (schema 2: meta block + per-run seed),
///   BENCH_<name>.prom          — Prometheus text of the last run,
///   BENCH_<name>.trace.json    — Chrome trace (chrome://tracing) of the
///                                last captured run,
///   BENCH_<name>.profile.json  — wall-clock profiler report + per-lane
///                                cost attribution (hot phases, scope tree),
///   BENCH_<name>.folded        — folded stacks for flamegraph.pl /
///                                inferno / speedscope.
/// Metric values are integers of simulated microseconds, so two runs with
/// the same seed produce identical "runs" arrays; only the meta block
/// (wall_seconds, git_sha) and the profile sidecars vary with the
/// environment. scripts/bench_diff.py compares the runs, not the meta.
/// The flush also prints the profiler's top-N hotspot table to stderr.
class ObsExporter {
 public:
  explicit ObsExporter(std::string bench_name)
      : name_(std::move(bench_name)),
        start_(std::chrono::steady_clock::now()) {}

  ObsExporter(const ObsExporter&) = delete;
  ObsExporter& operator=(const ObsExporter&) = delete;

  /// Snapshot the hierarchy's metrics registry under `label` and keep its
  /// trace as the latest one. Call once per benchmark run, after run_until.
  /// `seed` is recorded in the sidecar so a run can be reproduced.
  void capture(runtime::Hierarchy& h, const std::string& label,
               std::uint64_t seed = 0) {
    Run run;
    run.label = label;
    run.seed = seed;
    run.metrics = obs::metrics_to_json(h.obs().metrics);
    runs_.push_back(std::move(run));
    last_prom_ = obs::metrics_to_prometheus(h.obs().metrics);
    last_trace_ = obs::trace_to_chrome_json(h.obs().tracer);
    last_lanes_ = lanes_json(h);
  }

  ~ObsExporter() { flush(); }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    const std::string meta = meta_json();
    if (!runs_.empty()) {
      std::string json = "{\n  \"bench\": \"" + obs::json_escape(name_) +
                         "\",\n  \"meta\": " + meta + ",\n  \"runs\": [\n";
      for (std::size_t i = 0; i < runs_.size(); ++i) {
        json += "    {\"label\": \"" + obs::json_escape(runs_[i].label) +
                "\", \"seed\": " + std::to_string(runs_[i].seed) +
                ", \"metrics\": " + runs_[i].metrics + "}";
        json += (i + 1 < runs_.size()) ? ",\n" : "\n";
      }
      json += "  ]\n}\n";
      (void)obs::write_text_file("BENCH_" + name_ + ".metrics.json", json);
      (void)obs::write_text_file("BENCH_" + name_ + ".prom", last_prom_);
      (void)obs::write_text_file("BENCH_" + name_ + ".trace.json",
                                 last_trace_);
    }
    // The profiler is process-global, so even Hierarchy-less microbenches
    // (fig2, state) get a profile sidecar and a hotspot table.
    const obs::ProfileReport report = obs::Profiler::instance().report();
    if (!report.empty()) {
      std::string prof = "{\n  \"bench\": \"" + obs::json_escape(name_) +
                         "\",\n  \"meta\": " + meta +
                         ",\n  \"profile\": " + obs::profile_to_json(report) +
                         ",\n  \"lanes\": " + last_lanes_ + "\n}\n";
      (void)obs::write_text_file("BENCH_" + name_ + ".profile.json", prof);
      (void)obs::write_text_file("BENCH_" + name_ + ".folded",
                                 obs::profile_to_folded(report));
      std::fprintf(stderr, "\n[%s] wall-clock hotspots:\n%s", name_.c_str(),
                   obs::profile_top_table(report).c_str());
    }
  }

 private:
  struct Run {
    std::string label;
    std::uint64_t seed = 0;
    std::string metrics;
  };

  [[nodiscard]] std::string meta_json() const {
    return bench_meta_json(start_);
  }

  /// Per-lane cost attribution: events run and wall ns per scheduler lane,
  /// with the owning subnet's id (lane 0 = driver). Wall time — lives only
  /// in the profile sidecar, never in the deterministic exports.
  [[nodiscard]] static std::string lanes_json(runtime::Hierarchy& h) {
    const auto& events = h.executor().lane_events();
    const auto& wall = h.executor().lane_wall_ns();
    std::vector<std::string> names(
        std::max(events.size(), wall.size()), std::string("driver"));
    for (const auto& s : h.subnets()) {
      if (s->domain < names.size()) names[s->domain] = s->id.to_string();
    }
    std::string out = "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"lane\": " + std::to_string(i) + ", \"subnet\": \"" +
             obs::json_escape(names[i]) + "\", \"events\": " +
             std::to_string(i < events.size() ? events[i] : 0) +
             ", \"wall_ns\": " +
             std::to_string(i < wall.size() ? wall[i] : 0) + "}";
    }
    out += ']';
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool flushed_ = false;
  std::vector<Run> runs_;
  std::string last_prom_;
  std::string last_trace_;
  std::string last_lanes_ = "[]";
};

}  // namespace hc::bench
