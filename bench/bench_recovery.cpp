// R1 — crash-recovery cost: WAL replay vs rebuild from genesis (§15).
//
// One durable child subnet grows a chain to N blocks; validator 2 then
// crashes and restarts under two disk outcomes:
//   wal-replay   disk intact (kKeepAll): recovery replays the WAL and the
//                node rejoins at its pre-crash height with no network help,
//   disk-lost    media gone (kLoseDisk): recovery finds nothing, the node
//                restarts from genesis and refetches the whole chain from
//                peers through consensus catch-up (8 blocks per block time).
// Reported per (mode, blocks) case:
//   resync_sim_ms     simulated time from restart until the node is back at
//                     the pre-crash head — the paper-facing recovery-time
//                     signal; flat for wal-replay, linear in N for disk-lost
//   replayed_records  WAL records applied during recovery
//   recovered_height  chain height restored from disk alone
//
// Sidecars: BENCH_recovery.metrics.json carries the per-case gauges above
// plus the runtime's own durability counters (wal_appends_total,
// wal_fsyncs_total, recovery_replayed_records_total, the
// recovery_resync_latency_us histogram). The run FAILS (SkipWithError) if
// a wal-replay recovery falls short of the pre-crash height or a disk-lost
// recovery claims one — the bench doubles as an R1 acceptance check.
#include "bench_common.hpp"

#include "storage/durable.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("recovery");
  return e;
}

constexpr std::size_t kVictim = 2;
constexpr sim::Duration kBlockTime = 100 * sim::kMillisecond;

void run_recovery(benchmark::State& state) {
  const bool disk_lost = state.range(0) != 0;
  const auto blocks = static_cast<chain::Epoch>(state.range(1));
  const std::string mode = disk_lost ? "disk-lost" : "wal-replay";
  const std::string label =
      "recovery/" + mode + "/blocks=" + std::to_string(blocks);
  state.SetLabel(label);
  const std::uint64_t seed =
      4000 + static_cast<std::uint64_t>(state.range(0)) * 1000 +
      static_cast<std::uint64_t>(blocks);

  for (auto _ : state) {
    runtime::HierarchyConfig cfg = bench_config(seed);
    cfg.durability.enabled = true;
    runtime::Hierarchy h(cfg);

    consensus::EngineConfig engine = subnet_engine(kBlockTime);
    auto spawned = h.spawn_subnet(h.root(), "r1", h.config().root_params, 3,
                                  TokenAmount::whole(6), engine);
    if (!spawned.ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
    runtime::Subnet& child = *spawned.value();

    // Grow the chain to the target length, then crash the victim.
    if (!h.run_until(
            [&] { return child.api_node().chain().height() >= blocks; },
            static_cast<sim::Duration>(blocks) * kBlockTime * 10 +
                60 * sim::kSecond)) {
      state.SkipWithError("chain never reached target length");
      return;
    }
    storage::DiskFault fault;
    fault.kind = disk_lost ? storage::DiskFault::Kind::kLoseDisk
                           : storage::DiskFault::Kind::kKeepAll;
    const chain::Epoch victim_height = child.node(kVictim).chain().height();
    if (!h.crash_node(child, kVictim, fault).ok()) {
      state.SkipWithError("crash failed");
      return;
    }
    h.run_for(2 * sim::kSecond);

    const chain::Epoch pre_crash = child.api_node().chain().height();
    const sim::Time t0 = h.scheduler().now();
    if (!h.restart_node(child, kVictim).ok()) {
      state.SkipWithError("restart failed");
      return;
    }
    const auto& node = child.node(kVictim);
    const chain::Epoch recovered = node.recovered_height();
    const auto recovery = node.recovery_stats();  // copy: stats are per-boot
    if (!disk_lost && recovered < victim_height) {
      state.SkipWithError("wal-replay recovery fell short of the chain");
      return;
    }
    if (disk_lost && recovered != 0) {
      state.SkipWithError("disk-lost recovery claimed a recovered chain");
      return;
    }

    // Resync: the node is back at (or past) the head it missed.
    if (!h.run_until(
            [&] { return node.chain().height() >= pre_crash; },
            static_cast<sim::Duration>(blocks) * kBlockTime * 10 +
                60 * sim::kSecond)) {
      state.SkipWithError("restarted node never caught up");
      return;
    }
    const sim::Time resync_us = h.scheduler().now() - t0;

    const obs::Labels labels{{"case", label}};
    auto& m = h.obs().metrics;
    m.gauge("bench_recovery_resync_sim_us", labels)
        .set(static_cast<std::int64_t>(resync_us));
    m.gauge("bench_recovery_replayed_records", labels)
        .set(static_cast<std::int64_t>(recovery.records));
    m.gauge("bench_recovery_recovered_height", labels)
        .set(static_cast<std::int64_t>(recovered));

    state.counters["resync_sim_ms"] =
        static_cast<double>(resync_us) / static_cast<double>(sim::kMillisecond);
    state.counters["replayed_records"] = static_cast<double>(recovery.records);
    state.counters["recovered_height"] = static_cast<double>(recovered);
    exporter().capture(h, label, seed);
  }
}

BENCHMARK(run_recovery)
    ->ArgNames({"disk_lost", "blocks"})
    ->Args({0, 60})
    ->Args({0, 120})
    ->Args({0, 240})
    ->Args({1, 60})
    ->Args({1, 120})
    ->Args({1, 240})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
