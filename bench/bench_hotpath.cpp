// Hot-path memory bench: gossip -> decode -> execute -> commit.
//
// Exercises the zero-copy machinery end to end on a small hierarchy under
// saturating transfer load and exports the counters that gate it
// (scripts/bench_diff.py against the committed BENCH_hotpath.json):
//
//   alloc_bytes_total             arena demand of executors + mempools
//   payload_decode_hits_total     envelope decode-cache hits (sharing)
//   payload_decode_misses_total   actual codec decodes of gossip payloads
//   net_bytes_sent_total          logical gossip volume (per-hop)
//   net_bytes_physical_total      materialized payload bytes (per-message)
//
// All are deterministic per seed at --threads 1, so on unchanged code the
// bench_diff deltas are exactly zero. The run itself fails when the decode
// cache never hits (sharing regressed to one-decode-per-replica) or when
// physical bytes exceed logical bytes (accounting inverted).
//
// Reported wall-clock counters (events_per_wall_sec) describe the machine,
// not the protocol; they are printed but never gated.
#include <chrono>

#include "bench_common.hpp"
#include "net/envelope.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("hotpath");
  return e;
}

constexpr sim::Duration kWindow = 5 * sim::kSecond;
constexpr std::size_t kSubnets = 2;
constexpr std::size_t kValidators = 4;  // decode sharing: 1 parse, N readers
constexpr std::size_t kMsgsPerBlock = 10;
constexpr std::size_t kOfferedPerTick = 12;

void run_hotpath(benchmark::State& state) {
  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(/*seed=*/7100));

    std::vector<runtime::Subnet*> chains;
    std::vector<std::unique_ptr<LoadGenerator>> loads;
    for (std::size_t i = 0; i < kSubnets; ++i) {
      auto s = h.spawn_subnet(h.root(), "hot-" + std::to_string(i),
                              bench_params(), kValidators,
                              TokenAmount::whole(5), subnet_engine());
      if (!s.ok()) {
        state.SkipWithError("spawn failed");
        return;
      }
      chains.push_back(s.value());
      for (std::size_t n = 0; n < s.value()->size(); ++n) {
        s.value()->node(n).set_max_user_msgs_per_block(kMsgsPerBlock);
      }
    }
    for (std::size_t i = 0; i < chains.size(); ++i) {
      loads.push_back(std::make_unique<LoadGenerator>(
          *chains[i], 2, "hot-c" + std::to_string(i)));
      if (!fund_in_subnet(h, *chains[i], loads.back()->addresses(),
                          TokenAmount::whole(100))) {
        state.SkipWithError("funding failed");
        return;
      }
    }

    // Snapshot the process-wide decode counters around the window; their
    // deltas are mirrored into this run's registry so the sidecar (and the
    // bench_diff gate) sees them alongside the per-run arena/net counters.
    const std::uint64_t hits0 = net::Envelope::decode_hits();
    const std::uint64_t misses0 = net::Envelope::decode_misses();
    std::uint64_t committed0 = 0;
    for (auto* c : chains) {
      committed0 += c->node(0).stats().user_msgs_executed;
    }

    const auto wall0 = std::chrono::steady_clock::now();
    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      for (auto& load : loads) load->pump(kOfferedPerTick);
      h.run_for(100 * sim::kMillisecond);
    }
    h.run_for(sim::kSecond);  // drain in-flight blocks
    const double wall_secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    const std::uint64_t hits = net::Envelope::decode_hits() - hits0;
    const std::uint64_t misses = net::Envelope::decode_misses() - misses0;
    std::uint64_t committed = 0;
    for (auto* c : chains) {
      committed += c->node(0).stats().user_msgs_executed;
    }
    committed -= committed0;
    const net::Network::Stats net_stats = h.network().stats();

    if (hits == 0) {
      state.SkipWithError("decode cache never hit: payload sharing broken");
      return;
    }
    if (net_stats.bytes_physical > net_stats.bytes_sent) {
      state.SkipWithError("physical bytes exceed logical bytes");
      return;
    }

    h.obs().metrics.counter("payload_decode_hits_total").inc(hits);
    h.obs().metrics.counter("payload_decode_misses_total").inc(misses);

    state.counters["committed"] = static_cast<double>(committed);
    state.counters["decode_hits"] = static_cast<double>(hits);
    state.counters["decode_misses"] = static_cast<double>(misses);
    state.counters["decode_share_ratio"] =
        misses == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(misses);
    state.counters["bytes_logical"] =
        static_cast<double>(net_stats.bytes_sent);
    state.counters["bytes_physical"] =
        static_cast<double>(net_stats.bytes_physical);
    state.counters["events_per_wall_sec"] =
        wall_secs <= 0.0
            ? 0.0
            : static_cast<double>(h.scheduler().events_run()) / wall_secs;
    exporter().capture(h, "hotpath/saturated", 7100);
  }
}

BENCHMARK(run_hotpath)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
