// E1 — Fig. 1 / §I headline claim: horizontal scale-out.
//
// Aggregate committed-transaction throughput as a function of the number of
// subnets, against a rootnet-only baseline receiving the same total offered
// load. Every chain has identical capacity (block time 100ms, 10 user msgs
// per block => 100 tx/s ceiling); the paper's claim is that capacity adds
// up because subnets order and execute independently.
//
// Reported counters (per benchmark row):
//   subnets        number of spawned subnets (0 = rootnet baseline)
//   total_tps      committed user tx per simulated second, summed
//   per_chain_tps  total_tps / chains
//   sim_seconds    measurement window (simulated)
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("fig1_scaling");
  return e;
}

constexpr sim::Duration kWindow = 10 * sim::kSecond;
constexpr std::size_t kMsgsPerBlock = 10;   // per-chain capacity ceiling
constexpr std::size_t kOfferedPerTick = 12;  // > capacity: saturation

void configure_capacity(runtime::Subnet& subnet) {
  for (std::size_t i = 0; i < subnet.size(); ++i) {
    subnet.node(i).set_max_user_msgs_per_block(kMsgsPerBlock);
  }
}

void run_scaling(benchmark::State& state) {
  const int n_subnets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(/*seed=*/1000 + n_subnets));

    std::vector<runtime::Subnet*> chains;
    std::vector<std::unique_ptr<LoadGenerator>> loads;
    configure_capacity(h.root());
    if (n_subnets == 0) {
      chains.push_back(&h.root());  // baseline: all load on the rootnet
    } else {
      for (int i = 0; i < n_subnets; ++i) {
        auto s = h.spawn_subnet(h.root(), "scale-" + std::to_string(i),
                                bench_params(), 3, TokenAmount::whole(5),
                                subnet_engine());
        if (!s.ok()) {
          state.SkipWithError("spawn failed");
          return;
        }
        chains.push_back(s.value());
        configure_capacity(*s.value());
      }
    }

    // Two load users per chain, funded in-band.
    for (std::size_t i = 0; i < chains.size(); ++i) {
      loads.push_back(std::make_unique<LoadGenerator>(
          *chains[i], 2, "s" + std::to_string(n_subnets) + "c" +
                              std::to_string(i)));
      if (!fund_in_subnet(h, *chains[i], loads.back()->addresses(),
                          TokenAmount::whole(100))) {
        state.SkipWithError("funding failed");
        return;
      }
    }

    // Baseline committed counters.
    std::vector<std::uint64_t> before;
    before.reserve(chains.size());
    for (auto* c : chains) {
      before.push_back(c->node(0).stats().user_msgs_executed);
    }

    // Saturate for the window. The baseline row receives the SAME total
    // offered load as the n-subnet rows so the comparison is apples to
    // apples.
    const std::size_t chains_equivalent =
        n_subnets == 0 ? 8 : static_cast<std::size_t>(n_subnets);
    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      for (std::size_t i = 0; i < chains.size(); ++i) {
        loads[i]->pump(kOfferedPerTick * chains_equivalent / chains.size());
      }
      h.run_for(100 * sim::kMillisecond);
    }
    h.run_for(sim::kSecond);  // drain in-flight blocks

    std::uint64_t committed = 0;
    for (std::size_t i = 0; i < chains.size(); ++i) {
      committed +=
          chains[i]->node(0).stats().user_msgs_executed - before[i];
    }
    const double secs =
        static_cast<double>(kWindow) / static_cast<double>(sim::kSecond);
    state.counters["subnets"] = static_cast<double>(n_subnets);
    state.counters["total_tps"] = static_cast<double>(committed) / secs;
    state.counters["per_chain_tps"] =
        static_cast<double>(committed) / secs /
        static_cast<double>(chains.size());
    state.counters["sim_seconds"] = secs;
    exporter().capture(h, "scaling/subnets=" + std::to_string(n_subnets));
  }
}

BENCHMARK(run_scaling)
    ->ArgName("subnets")
    ->Arg(0)  // rootnet-only baseline
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

BENCHMARK_MAIN();
