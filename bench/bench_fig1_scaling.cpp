// E1 — Fig. 1 / §I headline claim: horizontal scale-out.
//
// Aggregate committed-transaction throughput as a function of the number of
// subnets, against a rootnet-only baseline receiving the same total offered
// load. Every chain has identical capacity (block time 100ms, 10 user msgs
// per block => 100 tx/s ceiling); the paper's claim is that capacity adds
// up because subnets order and execute independently.
//
// Reported counters (per benchmark row):
//   subnets        number of spawned subnets (0 = rootnet baseline)
//   total_tps      committed user tx per simulated second, summed
//   per_chain_tps  total_tps / chains
//   sim_seconds    measurement window (simulated)
//
// run_speedup additionally reports the WALL-CLOCK speedup of the parallel
// executor (DESIGN.md §11) on a 16-subnet hierarchy: the same seed run at
// 1 worker thread vs N, with cross-subnet WAN latency widening the
// conservative lookahead. Determinism makes the comparison exact — both
// runs execute the identical event sequence.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("fig1_scaling");
  return e;
}

constexpr sim::Duration kWindow = 10 * sim::kSecond;
constexpr std::size_t kMsgsPerBlock = 10;   // per-chain capacity ceiling
constexpr std::size_t kOfferedPerTick = 12;  // > capacity: saturation

void configure_capacity(runtime::Subnet& subnet) {
  for (std::size_t i = 0; i < subnet.size(); ++i) {
    subnet.node(i).set_max_user_msgs_per_block(kMsgsPerBlock);
  }
}

void run_scaling(benchmark::State& state) {
  const int n_subnets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(/*seed=*/1000 + n_subnets));

    std::vector<runtime::Subnet*> chains;
    std::vector<std::unique_ptr<LoadGenerator>> loads;
    configure_capacity(h.root());
    if (n_subnets == 0) {
      chains.push_back(&h.root());  // baseline: all load on the rootnet
    } else {
      for (int i = 0; i < n_subnets; ++i) {
        auto s = h.spawn_subnet(h.root(), "scale-" + std::to_string(i),
                                bench_params(), 3, TokenAmount::whole(5),
                                subnet_engine());
        if (!s.ok()) {
          state.SkipWithError("spawn failed");
          return;
        }
        chains.push_back(s.value());
        configure_capacity(*s.value());
      }
    }

    // Two load users per chain, funded in-band.
    for (std::size_t i = 0; i < chains.size(); ++i) {
      loads.push_back(std::make_unique<LoadGenerator>(
          *chains[i], 2, "s" + std::to_string(n_subnets) + "c" +
                              std::to_string(i)));
      if (!fund_in_subnet(h, *chains[i], loads.back()->addresses(),
                          TokenAmount::whole(100))) {
        state.SkipWithError("funding failed");
        return;
      }
    }

    // Baseline committed counters.
    std::vector<std::uint64_t> before;
    before.reserve(chains.size());
    for (auto* c : chains) {
      before.push_back(c->node(0).stats().user_msgs_executed);
    }

    // Saturate for the window. The baseline row receives the SAME total
    // offered load as the n-subnet rows so the comparison is apples to
    // apples.
    const std::size_t chains_equivalent =
        n_subnets == 0 ? 8 : static_cast<std::size_t>(n_subnets);
    const sim::Time start = h.scheduler().now();
    while (h.scheduler().now() - start < kWindow) {
      for (std::size_t i = 0; i < chains.size(); ++i) {
        loads[i]->pump(kOfferedPerTick * chains_equivalent / chains.size());
      }
      h.run_for(100 * sim::kMillisecond);
    }
    h.run_for(sim::kSecond);  // drain in-flight blocks

    std::uint64_t committed = 0;
    for (std::size_t i = 0; i < chains.size(); ++i) {
      committed +=
          chains[i]->node(0).stats().user_msgs_executed - before[i];
    }
    const double secs =
        static_cast<double>(kWindow) / static_cast<double>(sim::kSecond);
    state.counters["subnets"] = static_cast<double>(n_subnets);
    state.counters["total_tps"] = static_cast<double>(committed) / secs;
    state.counters["per_chain_tps"] =
        static_cast<double>(committed) / secs /
        static_cast<double>(chains.size());
    state.counters["sim_seconds"] = secs;
    exporter().capture(h, "scaling/subnets=" + std::to_string(n_subnets),
                       1000 + static_cast<std::uint64_t>(n_subnets));
  }
}

BENCHMARK(run_scaling)
    ->ArgName("subnets")
    ->Arg(0)  // rootnet-only baseline
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ parallel speedup

constexpr std::size_t kSpeedupSubnets = 16;
constexpr sim::Duration kSpeedupWindow = 5 * sim::kSecond;

/// Build a 16-subnet hierarchy with `threads` workers and co-located
/// subnets / WAN cross-subnet links (lookahead 40ms), drive the saturating
/// workload, and return the wall-clock seconds of the measurement loop.
double speedup_wall_seconds(std::size_t threads) {
  runtime::HierarchyConfig cfg = bench_config(/*seed=*/4242);
  cfg.threads = threads;
  cfg.cross_subnet_latency = runtime::HierarchyConfig::CrossSubnetLatency{
      50 * sim::kMillisecond, 10 * sim::kMillisecond};
  runtime::Hierarchy h(cfg);

  std::vector<runtime::Subnet*> chains;
  std::vector<std::unique_ptr<LoadGenerator>> loads;
  configure_capacity(h.root());
  for (std::size_t i = 0; i < kSpeedupSubnets; ++i) {
    auto s = h.spawn_subnet(h.root(), "speed-" + std::to_string(i),
                            bench_params(), 3, TokenAmount::whole(5),
                            subnet_engine());
    if (!s.ok()) return -1.0;
    chains.push_back(s.value());
    configure_capacity(*s.value());
  }
  for (std::size_t i = 0; i < chains.size(); ++i) {
    loads.push_back(std::make_unique<LoadGenerator>(
        *chains[i], 2, "speed-c" + std::to_string(i)));
    if (!fund_in_subnet(h, *chains[i], loads.back()->addresses(),
                        TokenAmount::whole(100))) {
      return -1.0;
    }
  }

  const sim::Time start = h.scheduler().now();
  const std::uint64_t w0 = h.executor().windows();
  const std::uint64_t d0 = h.executor().dispatches();
  const std::size_t e0 = h.scheduler().events_run();
  const auto wall_start = std::chrono::steady_clock::now();
  while (h.scheduler().now() - start < kSpeedupWindow) {
    for (auto& load : loads) load->pump(kOfferedPerTick);
    h.run_for(100 * sim::kMillisecond);
  }
  h.run_for(sim::kSecond);  // drain in-flight blocks
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(wall_end - wall_start).count();
  std::fprintf(stderr,
               "[speedup] threads=%zu wall=%.3fs windows=%llu "
               "dispatches=%llu events=%zu\n",
               threads, wall,
               static_cast<unsigned long long>(h.executor().windows() - w0),
               static_cast<unsigned long long>(h.executor().dispatches() - d0),
               h.scheduler().events_run() - e0);
  std::string dist = "[speedup] lane events:";
  for (const std::uint64_t n : h.executor().lane_events()) {
    dist += " " + std::to_string(n);
  }
  std::fprintf(stderr, "%s\n", dist.c_str());
  return wall;
}

void run_speedup(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  // The sequential reference is measured once (after a throwaway warm-up
  // run so the process-wide signature cache treats every measured run
  // equally) and shared across thread counts.
  static double wall_1t = -1.0;
  for (auto _ : state) {
    if (wall_1t < 0) {
      (void)speedup_wall_seconds(1);  // warm caches
      wall_1t = speedup_wall_seconds(1);
    }
    const double wall_nt = speedup_wall_seconds(threads);
    if (wall_1t <= 0 || wall_nt <= 0) {
      state.SkipWithError("speedup run failed");
      return;
    }
    const double speedup = wall_1t / wall_nt;
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["subnets"] = static_cast<double>(kSpeedupSubnets);
    // Wall-clock speedup needs hardware: on a host with fewer cores than
    // worker threads the measurement degenerates to executor overhead
    // (expect ~1.0). Recorded so sidecar baselines are comparable across
    // machines.
    state.counters["host_cpus"] =
        static_cast<double>(std::thread::hardware_concurrency());
    state.counters["wall_1t_s"] = wall_1t;
    state.counters["wall_nt_s"] = wall_nt;
    state.counters["speedup"] = speedup;
    // Surface the headline number in the metrics sidecar too. This is the
    // one wall-clock-derived (hence nondeterministic) value in the export.
    runtime::Hierarchy probe(bench_config(/*seed=*/4242));
    probe.obs().metrics
        .gauge("bench_parallel_speedup_milli",
               obs::Labels{{"threads", std::to_string(threads)},
                           {"subnets", std::to_string(kSpeedupSubnets)}})
        .set(static_cast<std::int64_t>(speedup * 1000.0));
    probe.obs().metrics.gauge("bench_host_cpus").set(static_cast<std::int64_t>(
        std::thread::hardware_concurrency()));
    exporter().capture(probe, "speedup/threads=" + std::to_string(threads),
                       4242);
  }
}

BENCHMARK(run_speedup)
    ->ArgName("threads")
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
