// E2 — Fig. 2: checkpoint template population, aggregation and signing.
//
// Three mechanism sweeps:
//   (a) window size: cost and size of cutting a checkpoint whose window
//       holds N bottom-up cross-msgs (template population),
//   (b) children: aggregation cost when the checkpoint carries metas and
//       child checks from C children (the checkpoint tree),
//   (c) policy: signing/verification cost and wire size of the checkpoint
//       proof under single / multi-sig / threshold policies with S signers.
//
// Counters: cut_ms (wall-clock per cut), checkpoint_bytes, metas,
//           sign_verify_ms, proof_bytes.
#include <chrono>

#include "bench_common.hpp"
#include "../tests/harness.hpp"

namespace hc::bench {
namespace {

// No Hierarchy here (single-chain microbench), so no metrics capture —
// but the process-global profiler still yields a hotspot table and
// BENCH_fig2_checkpoint.profile.json / .folded at exit.
ObsExporter profile_sidecar("fig2_checkpoint");

using testing::ChainWorld;

/// Build an SCA state whose window holds `n_msgs` pending bottom-up
/// messages and `n_children` child subnets with forwarded metas.
actors::ScaState loaded_sca(const core::SubnetId& self, int n_msgs,
                            int n_children) {
  actors::ScaState s;
  s.self = self;
  s.checkpoint_period = 10;
  for (int i = 0; i < n_msgs; ++i) {
    core::CrossMsg m;
    m.from_subnet = self;
    m.to_subnet = core::SubnetId::root();
    m.msg.from = Address::id(1000 + static_cast<std::uint64_t>(i));
    m.msg.to = Address::id(2000 + static_cast<std::uint64_t>(i % 16));
    m.msg.value = TokenAmount::whole(1);
    s.window_msgs.push_back(std::move(m));
  }
  for (int c = 0; c < n_children; ++c) {
    const Address sa = Address::id(100 + static_cast<std::uint64_t>(c));
    const core::SubnetId child = self.child(sa);
    actors::SubnetEntry entry;
    entry.id = child;
    entry.sa = sa;
    s.subnets.emplace(sa, entry);
    s.window_children.push_back(core::ChildCheck{
        child, {Cid::of(CidCodec::kCheckpoint,
                        to_bytes("child-cp-" + std::to_string(c)))}});
    core::CrossMsgMeta meta;  // a meta forwarded from this child
    meta.from = child;
    meta.to = core::SubnetId::root();
    meta.msgs_cid =
        Cid::of(CidCodec::kCrossMsgs, to_bytes("batch-" + std::to_string(c)));
    meta.msg_count = 8;
    s.forward_meta.push_back(std::move(meta));
  }
  return s;
}

void run_cut(benchmark::State& state) {
  const int n_msgs = static_cast<int>(state.range(0));
  const int n_children = static_cast<int>(state.range(1));
  const core::SubnetId self = core::SubnetId::root().child(Address::id(100));

  double total_ms = 0;
  double checkpoint_bytes = 0;
  double metas = 0;
  int iters = 0;
  for (auto _ : state) {
    ChainWorld world(self);
    chain::ActorEntry& sca = world.tree().get_or_create(chain::kScaAddr);
    sca.state = encode(loaded_sca(self, n_msgs, n_children));

    actors::CutParams cut;
    cut.epoch = 10;
    cut.proof = Cid::of(CidCodec::kBlock, to_bytes("anchor"));

    const auto t0 = std::chrono::steady_clock::now();
    auto receipt = world.implicit(chain::kScaAddr,
                                  actors::sca_method::kCutCheckpoint,
                                  encode(cut), TokenAmount());
    const auto t1 = std::chrono::steady_clock::now();
    if (!receipt.ok()) {
      state.SkipWithError("cut failed");
      return;
    }
    auto cp = decode<core::Checkpoint>(receipt.ret);
    if (!cp.ok()) {
      state.SkipWithError("no checkpoint returned");
      return;
    }
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    checkpoint_bytes = static_cast<double>(encode(cp.value()).size());
    metas = static_cast<double>(cp.value().cross_meta.size());
    ++iters;
  }
  state.counters["cut_ms"] = total_ms / iters;
  state.counters["checkpoint_bytes"] = checkpoint_bytes;
  state.counters["metas"] = metas;
  state.counters["window_msgs"] = n_msgs;
  state.counters["children"] = n_children;
}

// (a) window-size sweep, no children.
BENCHMARK(run_cut)
    ->ArgNames({"msgs", "children"})
    ->Args({10, 0})
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({5000, 0})
    // (b) children sweep, fixed window.
    ->Args({100, 1})
    ->Args({100, 4})
    ->Args({100, 16})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// (c) signature policies: sign+verify cost and proof size vs signer count.
void run_policy(benchmark::State& state) {
  const auto kind = static_cast<core::SignaturePolicyKind>(state.range(0));
  const int signers = static_cast<int>(state.range(1));

  core::Checkpoint cp;
  cp.source = core::SubnetId::root().child(Address::id(100));
  cp.epoch = 10;
  cp.proof = Cid::of(CidCodec::kBlock, to_bytes("anchor"));

  std::vector<crypto::KeyPair> keys;
  std::vector<crypto::PublicKey> validators;
  for (int i = 0; i < signers; ++i) {
    keys.push_back(crypto::KeyPair::from_label("pol-" + std::to_string(i)));
    validators.push_back(keys.back().public_key());
  }
  core::SignaturePolicy policy{kind,
                               static_cast<std::uint32_t>(
                                   kind == core::SignaturePolicyKind::kSingle
                                       ? 1
                                       : signers)};

  double ms = 0;
  int iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core::SignedCheckpoint sc;
    sc.checkpoint = cp;
    sc.checkpoint.epoch = 10 + iters;  // fresh content: defeat the sigcache
    const int to_sign = kind == core::SignaturePolicyKind::kSingle ? 1 : signers;
    for (int i = 0; i < to_sign; ++i) sc.add_signature(keys[static_cast<std::size_t>(i)]);
    const bool ok = policy.verify(sc, validators).ok();
    const auto t1 = std::chrono::steady_clock::now();
    if (!ok) {
      state.SkipWithError("policy verify failed");
      return;
    }
    ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++iters;
    benchmark::DoNotOptimize(sc);
  }
  state.counters["sign_verify_ms"] = ms / iters;
  state.counters["proof_bytes"] = static_cast<double>(
      policy.compact_proof_size(static_cast<std::size_t>(signers)));
  state.counters["signers"] = signers;
}

BENCHMARK(run_policy)
    ->ArgNames({"kind", "signers"})
    ->Args({0, 1})    // single
    ->Args({1, 4})    // multisig 4
    ->Args({1, 16})   // multisig 16
    ->Args({1, 64})   // multisig 64
    ->Args({2, 4})    // threshold 4 (aggregate wire size)
    ->Args({2, 16})
    ->Args({2, 64})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
