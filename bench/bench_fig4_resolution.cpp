// E4 — Fig. 4: content resolution for cross-msgs (push vs pull).
//
// A subnet releases a batch of bottom-up messages to the root. The batch
// travels in the checkpoint as a CID only; the root must obtain the raw
// messages either because the subnet's miners *pushed* them proactively, or
// by *pulling* from the source subnet's topic. We sweep:
//   - push enabled / disabled,
//   - batch size (1 / 10 / 100 messages),
//   - gossip loss (0% / 10%) — lost pushes force pull fallbacks.
//
// Counters: settle_sim_ms (release -> all applied at root), pushes, pulls,
//           resolves_served, resolution share of network bytes.
#include "bench_common.hpp"

namespace hc::bench {
namespace {

ObsExporter& exporter() {
  static ObsExporter e("fig4_resolution");
  return e;
}

void run_resolution(benchmark::State& state) {
  const bool push = state.range(0) != 0;
  const int batch = static_cast<int>(state.range(1));
  const double loss = static_cast<double>(state.range(2)) / 100.0;

  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(
        5000 + static_cast<std::uint64_t>(batch) + (push ? 1 : 0)));
    auto s = h.spawn_subnet(h.root(), "src", bench_params(), 3,
                            TokenAmount::whole(5), subnet_engine());
    if (!s.ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
    runtime::Subnet& src = *s.value();
    for (std::size_t i = 0; i < src.size(); ++i) {
      src.node(i).set_push_resolution(push);
    }

    auto alice = h.make_user("alice", TokenAmount::whole(10000));
    if (!alice.ok()) {
      state.SkipWithError("user failed");
      return;
    }
    auto f = h.send_cross(h.root(), alice.value(), src.id,
                          alice.value().addr,
                          TokenAmount::whole(batch + 10));
    if (!f.ok() ||
        !h.run_until(
            [&] {
              return !src.node(0).balance(alice.value().addr).is_zero();
            },
            120 * sim::kSecond)) {
      state.SkipWithError("funding failed");
      return;
    }

    // Inject loss only for the measured phase.
    h.network().set_drop_rate(loss);
    h.network().reset_stats();
    auto stats_before = [&] {
      runtime::NodeStats total;
      for (const auto& sub : h.subnets()) {
        for (std::size_t i = 0; i < sub->size(); ++i) {
          const auto& st = sub->node(i).stats();
          total.pulls_sent += st.pulls_sent;
          total.pushes_sent += st.pushes_sent;
          total.resolves_served += st.resolves_served;
        }
      }
      return total;
    };
    const runtime::NodeStats before = stats_before();

    // One release per batch message, all inside one checkpoint window.
    runtime::User sink{crypto::KeyPair::from_label("rsink"),
                       Address::key(crypto::KeyPair::from_label("rsink")
                                        .public_key()
                                        .to_bytes())};
    const sim::Time t0 = h.scheduler().now();
    std::uint64_t nonce = src.node(0).account_nonce(alice.value().addr);
    for (int i = 0; i < batch; ++i) {
      actors::CrossParams p;
      p.dest = core::SubnetId::root();
      p.to = sink.addr;
      chain::Message m;
      m.from = alice.value().addr;
      m.to = chain::kScaAddr;
      m.nonce = nonce++;  // pipelined: don't wait for inclusion
      m.value = TokenAmount::whole(1);
      m.method = actors::sca_method::kRelease;
      m.params = encode(p);
      m.gas_limit = 1u << 26;
      m.gas_price = TokenAmount::atto(1);
      if (!src.node(0)
               .submit_message(
                   chain::SignedMessage::sign(std::move(m), alice.value().key))
               .ok()) {
        state.SkipWithError("release submit failed");
        return;
      }
      h.run_for(20 * sim::kMillisecond);
    }
    const bool landed = h.run_until(
        [&] {
          return h.root().node(0).balance(sink.addr) ==
                 TokenAmount::whole(batch);
        },
        600 * sim::kSecond);
    if (!landed) {
      state.SkipWithError("batch did not settle");
      return;
    }
    const runtime::NodeStats after = stats_before();

    state.counters["settle_sim_ms"] =
        static_cast<double>(h.scheduler().now() - t0) / 1000.0;
    state.counters["pushes"] =
        static_cast<double>(after.pushes_sent - before.pushes_sent);
    state.counters["pulls"] =
        static_cast<double>(after.pulls_sent - before.pulls_sent);
    state.counters["resolves"] =
        static_cast<double>(after.resolves_served - before.resolves_served);
    state.counters["batch"] = batch;
    state.counters["push_enabled"] = push ? 1 : 0;
    state.counters["loss_pct"] = loss * 100;
    exporter().capture(h,
                       std::string("resolution/push=") + (push ? "1" : "0") +
                           ",batch=" + std::to_string(batch) +
                           ",losspct=" + std::to_string(state.range(2)),
                       5000 + static_cast<std::uint64_t>(batch) +
                           (push ? 1 : 0));
  }
}

BENCHMARK(run_resolution)
    ->ArgNames({"push", "batch", "losspct"})
    ->Args({1, 1, 0})
    ->Args({1, 10, 0})
    ->Args({1, 100, 0})
    ->Args({0, 1, 0})
    ->Args({0, 10, 0})
    ->Args({0, 100, 0})
    ->Args({1, 10, 10})  // pushes may be lost: pull fallback kicks in
    ->Args({0, 10, 10})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
