// E8 — §III subnet lifecycle: gas and latency of every lifecycle operation.
//
// Gas costs come from single-chain execution (they are consensus-state,
// identical everywhere); latencies are end-to-end simulated times over the
// full stack (spawn includes SA deploy + N joins + registration + child
// boot).
//
// Counters: gas_<op> for each operation; spawn_sim_ms for full spawning.
#include "bench_common.hpp"
#include "../tests/harness.hpp"

namespace hc::bench {
namespace {

using testing::ChainWorld;
using testing::User;

ObsExporter& exporter() {
  static ObsExporter e("tab2_lifecycle");
  return e;
}

void run_gas(benchmark::State& state) {
  for (auto _ : state) {
    ChainWorld world;
    User& v0 = world.user("v0", TokenAmount::whole(10000));
    User& v1 = world.user("v1", TokenAmount::whole(10000));
    core::SubnetParams params;
    params.name = "lifecycle";
    params.min_validator_stake = TokenAmount::whole(5);
    params.min_collateral = TokenAmount::whole(10);
    params.checkpoint_period = 10;
    params.checkpoint_policy =
        core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};

    // Deploy.
    actors::ExecParams exec;
    exec.code = chain::kCodeSubnetActor;
    exec.ctor_state = actors::make_sa_ctor_state(params);
    auto deploy = world.call(v0, chain::kInitAddr, actors::init_method::kExec,
                             encode(exec), TokenAmount());
    const Address sa = decode<Address>(deploy.ret).value_or(Address());
    state.counters["gas_deploy_sa"] = static_cast<double>(deploy.gas_used);

    // Joins (the second one triggers SCA registration).
    auto join0 = world.call(v0, sa, actors::sa_method::kJoin,
                            encode(actors::JoinParams{v0.key.public_key()}),
                            TokenAmount::whole(5));
    auto join1 = world.call(v1, sa, actors::sa_method::kJoin,
                            encode(actors::JoinParams{v1.key.public_key()}),
                            TokenAmount::whole(5));
    state.counters["gas_join"] = static_cast<double>(join0.gas_used);
    state.counters["gas_join_registering"] =
        static_cast<double>(join1.gas_used);

    // Cross-msgs.
    const core::SubnetId child = core::SubnetId::root().child(sa);
    actors::CrossParams fund;
    fund.dest = child;
    fund.to = v0.addr;
    auto fund_r = world.call(v0, chain::kScaAddr, actors::sca_method::kFund,
                             encode(fund), TokenAmount::whole(20));
    state.counters["gas_fund"] = static_cast<double>(fund_r.gas_used);

    // Checkpoint submission (empty checkpoint, 1 signature).
    core::SignedCheckpoint sc;
    sc.checkpoint.source = child;
    sc.checkpoint.epoch = 10;
    sc.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("b10"));
    sc.add_signature(v0.key);
    auto cp_r = world.call(v0, sa, actors::sa_method::kSubmitCheckpoint,
                           encode(sc), TokenAmount());
    state.counters["gas_submit_checkpoint"] =
        static_cast<double>(cp_r.gas_used);

    // Save.
    auto save_r = world.call(
        v0, chain::kScaAddr, actors::sca_method::kSave,
        encode(actors::SaveParams{
            Cid::of(CidCodec::kStateRoot, to_bytes("snap"))}),
        TokenAmount());
    state.counters["gas_save"] = static_cast<double>(save_r.gas_used);

    // Leave x2, then kill.
    auto leave_r =
        world.call(v0, sa, actors::sa_method::kLeave, {}, TokenAmount());
    (void)world.call(v1, sa, actors::sa_method::kLeave, {}, TokenAmount());
    auto kill_r =
        world.call(v1, sa, actors::sa_method::kKill, {}, TokenAmount());
    state.counters["gas_leave"] = static_cast<double>(leave_r.gas_used);
    state.counters["gas_kill"] = static_cast<double>(kill_r.gas_used);
  }
}

BENCHMARK(run_gas)->Iterations(1)->Unit(benchmark::kMillisecond);

void run_spawn_latency(benchmark::State& state) {
  const auto n_validators = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    runtime::Hierarchy h(bench_config(8000 + n_validators));
    const sim::Time t0 = h.scheduler().now();
    // Stake sized so even a single validator crosses min_collateral.
    auto s = h.spawn_subnet(h.root(), "spawned", bench_params(),
                            n_validators, TokenAmount::whole(12),
                            subnet_engine());
    if (!s.ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
    const sim::Time registered = h.scheduler().now();
    // Time until the child produces its first 3 blocks (fully live).
    const bool live = h.run_until(
        [&] { return s.value()->node(0).chain().height() >= 3; },
        120 * sim::kSecond);
    if (!live) {
      state.SkipWithError("child not live");
      return;
    }
    state.counters["spawn_sim_ms"] =
        static_cast<double>(registered - t0) / 1000.0;
    state.counters["live_sim_ms"] =
        static_cast<double>(h.scheduler().now() - t0) / 1000.0;
    state.counters["validators"] = static_cast<double>(n_validators);
    exporter().capture(h, "spawn/validators=" + std::to_string(n_validators),
                       8000 + n_validators);
  }
}

BENCHMARK(run_spawn_latency)
    ->ArgName("validators")
    ->Arg(1)
    ->Arg(3)
    ->Arg(7)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Inactive-state churn: leave below minimum, rejoin, verify transitions.
void run_churn(benchmark::State& state) {
  for (auto _ : state) {
    ChainWorld world;
    User& v0 = world.user("c-v0", TokenAmount::whole(1000));
    User& v1 = world.user("c-v1", TokenAmount::whole(1000));
    core::SubnetParams params;
    params.min_validator_stake = TokenAmount::whole(5);
    params.min_collateral = TokenAmount::whole(10);
    params.checkpoint_period = 10;
    params.checkpoint_policy =
        core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
    const Address sa = world.deploy_sa(v0, params);
    int transitions = 0;
    for (User* v : {&v0, &v1}) {
      (void)world.call(*v, sa, actors::sa_method::kJoin,
                       encode(actors::JoinParams{v->key.public_key()}),
                       TokenAmount::whole(6));
    }
    for (int round = 0; round < 8; ++round) {
      (void)world.call(v1, sa, actors::sa_method::kLeave, {}, TokenAmount());
      if (world.sca_state().subnets.begin()->second.status ==
          core::SubnetStatus::kInactive) {
        ++transitions;
      }
      (void)world.call(v1, sa, actors::sa_method::kJoin,
                       encode(actors::JoinParams{v1.key.public_key()}),
                       TokenAmount::whole(6));
      if (world.sca_state().subnets.begin()->second.status ==
          core::SubnetStatus::kActive) {
        ++transitions;
      }
    }
    state.counters["status_transitions"] = transitions;  // expect 16
  }
}

BENCHMARK(run_churn)->Iterations(1)->Unit(benchmark::kMillisecond);

QuietLogs quiet;

}  // namespace
}  // namespace hc::bench

HC_BENCH_MAIN()
